package cluster

import (
	"fmt"
	"math"
)

// CostModel converts work volumes measured on the real data path into
// simulated service times. All constants are in seconds.
//
// Calibration: the constants below were chosen so that the reproduced
// Figure 2 and Figure 3 series land in the same order of magnitude as the
// paper's testbed (dual-core VMs, 2 GB RAM): a personalized query over 9 500
// friends on 4 nodes costs a few seconds, and 30–50 concurrent 6 000-friend
// queries average tens of seconds on small clusters. Only the *shape* of the
// curves (linearity in friends, ordering of cluster sizes, concurrency
// degradation) is asserted by the experiments; the constants set the scale.
type CostModel struct {
	// WebParse is the fixed web-server cost to parse a REST query and plan
	// the coprocessor fan-out.
	WebParse float64
	// RPC is the per-region-task network round-trip plus request
	// serialization cost between the web server and a region server.
	RPC float64
	// CoprocessorStart is the fixed cost of launching one coprocessor
	// execution on a region.
	CoprocessorStart float64
	// FriendGet is the per-friend cost of the indexed get that locates the
	// friend's visit rows inside a region.
	FriendGet float64
	// RowScan is the per-visit-row cost of decoding and filter-evaluating
	// one stored visit inside the coprocessor.
	RowScan float64
	// Aggregate is the per-matching-visit cost of folding a visit into its
	// POI's running hotness/interest aggregate.
	Aggregate float64
	// SortPerItem is the per-item × log2(items) coefficient for the
	// region-side candidate sort.
	SortPerItem float64
	// MergePerItem is the web-server cost per candidate POI merged from the
	// per-region sorted lists into the final ranking.
	MergePerItem float64
	// ResponsePerItem is the web-server cost per returned POI for JSON
	// serialization.
	ResponsePerItem float64
	// RelLookup is the fixed cost of an indexed non-personalized query on
	// the relational store.
	RelLookup float64
	// RelPerRow is the per-result-row cost of a non-personalized query.
	RelPerRow float64
	// MapPerRecord / ReducePerRecord / TaskStart cost the MapReduce engine
	// when jobs run on the simulated cluster.
	MapPerRecord    float64
	ReducePerRecord float64
	TaskStart       float64
}

// DefaultCostModel returns the calibrated constants described above.
func DefaultCostModel() CostModel {
	return CostModel{
		WebParse:         3e-3,
		RPC:              1.5e-3,
		CoprocessorStart: 2e-3,
		FriendGet:        50e-6,
		RowScan:          8.5e-6,
		Aggregate:        1.5e-6,
		SortPerItem:      0.4e-6,
		MergePerItem:     0.6e-6,
		ResponsePerItem:  0.8e-6,
		RelLookup:        2e-3,
		RelPerRow:        4e-6,
		MapPerRecord:     8e-6,
		ReducePerRecord:  6e-6,
		TaskStart:        120e-3,
	}
}

// Validate checks that every constant is non-negative and that the model is
// not entirely zero (which would make every simulated latency 0 and hide
// scheduling bugs).
func (m CostModel) Validate() error {
	fields := map[string]float64{
		"WebParse": m.WebParse, "RPC": m.RPC, "CoprocessorStart": m.CoprocessorStart,
		"FriendGet": m.FriendGet, "RowScan": m.RowScan, "Aggregate": m.Aggregate,
		"SortPerItem": m.SortPerItem, "MergePerItem": m.MergePerItem,
		"ResponsePerItem": m.ResponsePerItem, "RelLookup": m.RelLookup,
		"RelPerRow": m.RelPerRow, "MapPerRecord": m.MapPerRecord,
		"ReducePerRecord": m.ReducePerRecord, "TaskStart": m.TaskStart,
	}
	sum := 0.0
	for name, v := range fields {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("cluster: cost model field %s = %g is invalid", name, v)
		}
		sum += v
	}
	if sum == 0 {
		return fmt.Errorf("cluster: cost model is all zeros")
	}
	return nil
}

// CoprocessorWork is the work a single region's coprocessor actually
// performed while executing a personalized query; the region server reports
// it and the cost model turns it into a service time.
type CoprocessorWork struct {
	// Friends is the number of friend keys probed in this region.
	Friends int
	// RowsScanned is the number of visit rows decoded and filtered.
	RowsScanned int
	// VisitsMatched is the number of visits that satisfied all predicates
	// and were aggregated.
	VisitsMatched int
	// CandidatePOIs is the number of distinct POIs sorted and returned.
	CandidatePOIs int
}

// CoprocessorServiceTime converts coprocessor work into seconds of CPU on a
// region server core.
func (m CostModel) CoprocessorServiceTime(w CoprocessorWork) float64 {
	t := m.CoprocessorStart +
		float64(w.Friends)*m.FriendGet +
		float64(w.RowsScanned)*m.RowScan +
		float64(w.VisitsMatched)*m.Aggregate
	if w.CandidatePOIs > 1 {
		t += float64(w.CandidatePOIs) * math.Log2(float64(w.CandidatePOIs)) * m.SortPerItem
	}
	return t
}

// MergeServiceTime is the web-server cost of merging the per-region sorted
// candidate lists (totalCandidates items across all regions) and serializing
// the top `returned` results.
func (m CostModel) MergeServiceTime(totalCandidates, returned int) float64 {
	return float64(totalCandidates)*m.MergePerItem + float64(returned)*m.ResponsePerItem
}

// RelationalServiceTime is the cost of a non-personalized query answered by
// the relational store.
func (m CostModel) RelationalServiceTime(rows int) float64 {
	return m.RelLookup + float64(rows)*m.RelPerRow
}

// MapTaskServiceTime costs one map task processing the given record count.
func (m CostModel) MapTaskServiceTime(records int) float64 {
	return m.TaskStart + float64(records)*m.MapPerRecord
}

// ReduceTaskServiceTime costs one reduce task processing the given record count.
func (m CostModel) ReduceTaskServiceTime(records int) float64 {
	return m.TaskStart + float64(records)*m.ReducePerRecord
}
