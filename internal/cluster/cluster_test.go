package cluster

import (
	"math"
	"testing"
)

func TestNewValidatesConfig(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero-nodes", func(c *Config) { c.Nodes = 0 }},
		{"zero-cores", func(c *Config) { c.CoresPerNode = 0 }},
		{"zero-web", func(c *Config) { c.WebServers = 0 }},
		{"zero-web-cores", func(c *Config) { c.WebServerCores = 0 }},
		{"bad-cost", func(c *Config) { c.Cost.RowScan = -1 }},
		{"zero-cost", func(c *Config) { c.Cost = CostModel{} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig(4)
			tc.mut(&cfg)
			if _, err := New(cfg); err == nil {
				t.Errorf("expected config validation error for %s", tc.name)
			}
		})
	}
}

func TestDefaultConfigMatchesPaperTestbed(t *testing.T) {
	cfg := DefaultConfig(16)
	if cfg.Nodes != 16 || cfg.CoresPerNode != 2 {
		t.Errorf("worker VMs should be dual-core: %+v", cfg)
	}
	if cfg.WebServers != 2 || cfg.WebServerCores != 4 {
		t.Errorf("web farm should be two 4-core servers: %+v", cfg)
	}
}

func TestNodeIndexWrapsAndNegatives(t *testing.T) {
	c, err := New(DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if c.Node(0) != c.Node(4) {
		t.Error("node index must wrap modulo the node count")
	}
	if c.Node(-1) == nil {
		t.Error("negative indexes must map to a valid node")
	}
}

func TestPickWebServerRoundRobin(t *testing.T) {
	c, err := New(DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	a := c.PickWebServer()
	b := c.PickWebServer()
	if a == b {
		t.Error("consecutive picks should alternate between the two web servers")
	}
	if c.PickWebServer() != a {
		t.Error("third pick should wrap back to the first web server")
	}
}

func TestCoprocessorServiceTimeComposition(t *testing.T) {
	m := DefaultCostModel()
	w := CoprocessorWork{Friends: 100, RowsScanned: 17000, VisitsMatched: 300, CandidatePOIs: 50}
	got := m.CoprocessorServiceTime(w)
	want := m.CoprocessorStart +
		100*m.FriendGet + 17000*m.RowScan + 300*m.Aggregate +
		50*math.Log2(50)*m.SortPerItem
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("service time = %g, want %g", got, want)
	}
	// Zero work should still pay the fixed coprocessor launch cost.
	if m.CoprocessorServiceTime(CoprocessorWork{}) != m.CoprocessorStart {
		t.Error("empty work must cost exactly the launch overhead")
	}
	// One candidate POI needs no sort.
	one := m.CoprocessorServiceTime(CoprocessorWork{CandidatePOIs: 1})
	if one != m.CoprocessorStart {
		t.Errorf("single candidate must not pay sort cost, got %g", one)
	}
}

func TestServiceTimeMonotonicInWork(t *testing.T) {
	m := DefaultCostModel()
	small := m.CoprocessorServiceTime(CoprocessorWork{Friends: 10, RowsScanned: 1000})
	large := m.CoprocessorServiceTime(CoprocessorWork{Friends: 100, RowsScanned: 100000})
	if large <= small {
		t.Errorf("more work must cost more: %g <= %g", large, small)
	}
}

// TestClusterScalingShape runs the same synthetic fan-out workload on 4, 8
// and 16 nodes and asserts the core property behind Figure 2: larger
// clusters finish strictly faster, and the speedup is bounded by the
// parallelism ratio.
func TestClusterScalingShape(t *testing.T) {
	latency := func(nodes int) float64 {
		c, err := New(DefaultConfig(nodes))
		if err != nil {
			t.Fatal(err)
		}
		m := c.Config().Cost
		// 64 region tasks, each scanning 25k rows, fanned out at t=0.
		const regions = 64
		done := 0
		var finish float64
		for i := 0; i < regions; i++ {
			service := m.CoprocessorServiceTime(CoprocessorWork{Friends: 90, RowsScanned: 25000, VisitsMatched: 500, CandidatePOIs: 120})
			_, err := c.Node(i).Submit(0, service, func(at float64) {
				done++
				if at > finish {
					finish = at
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		if _, err := c.Run(); err != nil {
			t.Fatal(err)
		}
		if done != regions {
			t.Fatalf("only %d/%d tasks completed", done, regions)
		}
		return finish
	}

	l4, l8, l16 := latency(4), latency(8), latency(16)
	if !(l4 > l8 && l8 > l16) {
		t.Fatalf("latency must decrease with cluster size: 4→%g 8→%g 16→%g", l4, l8, l16)
	}
	// Perfect scaling bound: 4→16 nodes cannot exceed 4× speedup.
	if l4/l16 > 4.0+1e-9 {
		t.Errorf("speedup %g exceeds the parallelism bound 4", l4/l16)
	}
	// And it should realize most of the available parallelism (> 2×).
	if l4/l16 < 2.0 {
		t.Errorf("speedup %g is implausibly low for a 4x bigger cluster", l4/l16)
	}
}

func TestRunDetectsRunawayScheduling(t *testing.T) {
	c, err := New(DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	var loop func()
	loop = func() { _ = c.Engine().After(0.001, loop) }
	if err := c.Engine().At(0, loop); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(); err == nil {
		t.Error("expected the event guard to fire")
	}
}

func TestMapReduceCosts(t *testing.T) {
	m := DefaultCostModel()
	if m.MapTaskServiceTime(0) != m.TaskStart {
		t.Error("empty map task should cost the task start overhead")
	}
	if m.ReduceTaskServiceTime(1000) <= m.TaskStart {
		t.Error("reduce cost must grow with records")
	}
}

func TestTotalBusyTimeAccounting(t *testing.T) {
	c, err := New(DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Node(0).Submit(0, 1.5, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Node(1).Submit(0, 2.5, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if got := c.TotalBusyTime(); math.Abs(got-4.0) > 1e-12 {
		t.Errorf("total busy time = %g, want 4.0", got)
	}
}
