// Package cluster models the deployment substrate of the platform: a set of
// worker nodes (the HBase/Hadoop cluster in the paper) plus a web-server
// farm, connected by a network with a fixed round-trip cost.
//
// The cluster is a *timing* model layered on the discrete-event simulator in
// internal/sim: real code executes against real data structures, and the
// cluster converts the work it performed (rows scanned, tuples aggregated,
// bytes shipped) into simulated latency with per-core FCFS queueing. This is
// what lets a single-CPU machine reproduce the 4/8/16-node scaling curves of
// the paper's Figures 2 and 3.
package cluster

import (
	"fmt"

	"modissense/internal/sim"
)

// Config describes a simulated cluster deployment.
type Config struct {
	// Nodes is the number of worker VMs (the paper uses 4, 8 and 16).
	Nodes int
	// CoresPerNode is the number of parallel task slots per node (the
	// paper's VMs are dual-core).
	CoresPerNode int
	// WebServers is the number of frontend web servers; the paper
	// determined two 4-core servers suffice.
	WebServers int
	// WebServerCores is the number of cores per web server.
	WebServerCores int
	// Cost holds the calibrated cost model.
	Cost CostModel
}

// DefaultConfig mirrors the paper's testbed: dual-core worker VMs and two
// 4-core web servers.
func DefaultConfig(nodes int) Config {
	return Config{
		Nodes:          nodes,
		CoresPerNode:   2,
		WebServers:     2,
		WebServerCores: 4,
		Cost:           DefaultCostModel(),
	}
}

// Cluster is a simulated deployment: an engine, one Resource per worker
// node and one per web server.
type Cluster struct {
	cfg     Config
	eng     *sim.Engine
	nodes   []*sim.Resource
	web     []*sim.Resource
	pg      *sim.Resource
	nextWeb int // round-robin load-balancer cursor
}

// New validates cfg and builds the cluster with a fresh simulation engine.
func New(cfg Config) (*Cluster, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("cluster: need at least one node, got %d", cfg.Nodes)
	}
	if cfg.CoresPerNode < 1 {
		return nil, fmt.Errorf("cluster: need at least one core per node, got %d", cfg.CoresPerNode)
	}
	if cfg.WebServers < 1 {
		return nil, fmt.Errorf("cluster: need at least one web server, got %d", cfg.WebServers)
	}
	if cfg.WebServerCores < 1 {
		return nil, fmt.Errorf("cluster: need at least one web-server core, got %d", cfg.WebServerCores)
	}
	if err := cfg.Cost.Validate(); err != nil {
		return nil, err
	}
	c := &Cluster{cfg: cfg, eng: sim.NewEngine()}
	for i := 0; i < cfg.Nodes; i++ {
		r, err := sim.NewResource(c.eng, fmt.Sprintf("node-%d", i), cfg.CoresPerNode)
		if err != nil {
			return nil, err
		}
		c.nodes = append(c.nodes, r)
	}
	for i := 0; i < cfg.WebServers; i++ {
		r, err := sim.NewResource(c.eng, fmt.Sprintf("web-%d", i), cfg.WebServerCores)
		if err != nil {
			return nil, err
		}
		c.web = append(c.web, r)
	}
	pg, err := sim.NewResource(c.eng, "postgres", 4)
	if err != nil {
		return nil, err
	}
	c.pg = pg
	return c, nil
}

// PG returns the relational-store server (PostgreSQL's role): a single
// 4-core machine serving the non-personalized query path.
func (c *Cluster) PG() *sim.Resource { return c.pg }

// Engine exposes the simulation engine for experiment drivers.
func (c *Cluster) Engine() *sim.Engine { return c.eng }

// Config returns the deployment configuration.
func (c *Cluster) Config() Config { return c.cfg }

// NumNodes returns the worker-node count.
func (c *Cluster) NumNodes() int { return len(c.nodes) }

// Node returns the resource for worker node i (modulo the node count, so
// any region→node assignment hashes safely).
func (c *Cluster) Node(i int) *sim.Resource {
	if i < 0 {
		i = -i
	}
	return c.nodes[i%len(c.nodes)]
}

// PickWebServer returns the next web server chosen by the round-robin load
// balancer that fronts the farm.
func (c *Cluster) PickWebServer() *sim.Resource {
	w := c.web[c.nextWeb%len(c.web)]
	c.nextWeb++
	return w
}

// Run drains the event queue and returns the final simulated time.
func (c *Cluster) Run() (sim.Time, error) {
	// A generous guard: queries spawn O(regions) events each; anything past
	// tens of millions of events indicates a scheduling bug.
	return c.eng.Run(50_000_000)
}

// TotalBusyTime sums busy server-seconds across worker nodes.
func (c *Cluster) TotalBusyTime() float64 {
	var t float64
	for _, n := range c.nodes {
		t += n.BusyTime()
	}
	return t
}
