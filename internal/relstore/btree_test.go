package relstore

import (
	"math/rand"
	"sort"
	"testing"
)

func TestBTreeInsertSearchDelete(t *testing.T) {
	bt, err := newBTree(2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		bt.insert(IntVal(int64(i%10)), int64(i))
	}
	if bt.len() != 100 {
		t.Fatalf("len = %d, want 100", bt.len())
	}
	if err := bt.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	// Duplicates are ignored.
	bt.insert(IntVal(3), 3)
	if bt.len() != 100 {
		t.Errorf("duplicate insert changed len to %d", bt.len())
	}
	// Range scan over value 3: rows 3, 13, ..., 93.
	var rows []int64
	lo, hi := IntVal(3), IntVal(3)
	bt.ascendRange(&lo, &hi, func(v Value, row int64) bool {
		rows = append(rows, row)
		return true
	})
	if len(rows) != 10 || rows[0] != 3 || rows[9] != 93 {
		t.Errorf("rows for value 3 = %v", rows)
	}
	if !bt.delete(IntVal(3), 13) {
		t.Error("delete of existing entry must return true")
	}
	if bt.delete(IntVal(3), 13) {
		t.Error("second delete must return false")
	}
	if err := bt.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBTreeRejectsTinyDegree(t *testing.T) {
	if _, err := newBTree(1); err == nil {
		t.Error("degree 1 must fail")
	}
}

// TestBTreeMatchesSortedSliceModel drives random inserts/deletes against a
// sorted-slice oracle and compares full scans and range scans.
func TestBTreeMatchesSortedSliceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 20; trial++ {
		degree := 2 + rng.Intn(6)
		bt, err := newBTree(degree)
		if err != nil {
			t.Fatal(err)
		}
		type entry struct {
			v   int64
			row int64
		}
		var model []entry
		has := func(v, row int64) bool {
			for _, e := range model {
				if e.v == v && e.row == row {
					return true
				}
			}
			return false
		}
		for op := 0; op < 400; op++ {
			v := int64(rng.Intn(40))
			row := int64(rng.Intn(20))
			if rng.Intn(3) == 0 {
				got := bt.delete(IntVal(v), row)
				want := has(v, row)
				if got != want {
					t.Fatalf("delete(%d,%d) = %v, want %v", v, row, got, want)
				}
				if want {
					for i, e := range model {
						if e.v == v && e.row == row {
							model = append(model[:i], model[i+1:]...)
							break
						}
					}
				}
			} else {
				bt.insert(IntVal(v), row)
				if !has(v, row) {
					model = append(model, entry{v, row})
				}
			}
			if op%50 == 0 {
				if err := bt.checkInvariants(); err != nil {
					t.Fatalf("trial %d op %d: %v", trial, op, err)
				}
			}
		}
		if bt.len() != len(model) {
			t.Fatalf("len = %d, model = %d", bt.len(), len(model))
		}
		// Full ordered scan must equal the sorted model.
		sort.Slice(model, func(i, j int) bool {
			if model[i].v != model[j].v {
				return model[i].v < model[j].v
			}
			return model[i].row < model[j].row
		})
		var got []entry
		bt.ascendRange(nil, nil, func(v Value, row int64) bool {
			got = append(got, entry{v.I, row})
			return true
		})
		if len(got) != len(model) {
			t.Fatalf("scan %d entries, model %d", len(got), len(model))
		}
		for i := range got {
			if got[i] != model[i] {
				t.Fatalf("scan[%d] = %+v, model %+v", i, got[i], model[i])
			}
		}
		// Random range scans.
		for r := 0; r < 10; r++ {
			a, b := int64(rng.Intn(40)), int64(rng.Intn(40))
			if a > b {
				a, b = b, a
			}
			loV, hiV := IntVal(a), IntVal(b)
			var rangeGot []entry
			bt.ascendRange(&loV, &hiV, func(v Value, row int64) bool {
				rangeGot = append(rangeGot, entry{v.I, row})
				return true
			})
			var rangeWant []entry
			for _, e := range model {
				if e.v >= a && e.v <= b {
					rangeWant = append(rangeWant, e)
				}
			}
			if len(rangeGot) != len(rangeWant) {
				t.Fatalf("range [%d,%d]: got %d want %d", a, b, len(rangeGot), len(rangeWant))
			}
			for i := range rangeGot {
				if rangeGot[i] != rangeWant[i] {
					t.Fatalf("range [%d,%d][%d]: got %+v want %+v", a, b, i, rangeGot[i], rangeWant[i])
				}
			}
		}
	}
}

func TestBTreeEarlyStop(t *testing.T) {
	bt, _ := newBTree(3)
	for i := 0; i < 50; i++ {
		bt.insert(IntVal(int64(i)), int64(i))
	}
	count := 0
	bt.ascendRange(nil, nil, func(Value, int64) bool {
		count++
		return count < 7
	})
	if count != 7 {
		t.Errorf("early stop after %d entries, want 7", count)
	}
}

func TestBTreeTextKeys(t *testing.T) {
	bt, _ := newBTree(2)
	words := []string{"taverna", "bar", "museum", "beach", "cafe", "hotel"}
	for i, w := range words {
		bt.insert(TextVal(w), int64(i))
	}
	var got []string
	bt.ascendRange(nil, nil, func(v Value, _ int64) bool {
		got = append(got, v.S)
		return true
	})
	if !sort.StringsAreSorted(got) {
		t.Errorf("text keys out of order: %v", got)
	}
}
