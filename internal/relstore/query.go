package relstore

import (
	"fmt"
	"sort"
	"strings"

	"modissense/internal/geo"
)

// Op enumerates predicate operators.
type Op int

// Predicate operators.
const (
	Eq Op = iota
	Lt
	Le
	Gt
	Ge
	// ContainsWord matches Text columns holding space-separated word lists
	// (the POI keyword column); the operand must be a single word.
	ContainsWord
)

// Predicate is one WHERE condition on a column.
type Predicate struct {
	Column string
	Op     Op
	Arg    Value
}

// Query is a single-table SELECT: conjunctive predicates, optional spatial
// containment, ordering and limit.
type Query struct {
	// Where predicates are ANDed.
	Where []Predicate
	// Within, when non-nil, restricts rows to the bounding box using the
	// table's spatial index (or a filtered scan when absent).
	Within *geo.Rect
	// OrderBy names the sort column ("" keeps primary-key order).
	OrderBy string
	// Desc reverses the sort order.
	Desc bool
	// Limit caps the result (0 = unlimited).
	Limit int
}

// ExplainInfo reports the access path the planner chose — tests and the
// schema-ablation experiment assert on it.
type ExplainInfo struct {
	// Access is "index:<column>", "spatial", or "fullscan".
	Access string
	// RowsExamined counts rows fetched before residual filtering.
	RowsExamined int
}

// Select plans and executes the query, returning copies of matching rows.
func (t *Table) Select(q Query) ([]Row, ExplainInfo, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()

	info := ExplainInfo{}
	// Type-check predicates before execution.
	for _, p := range q.Where {
		ci := t.schema.ColIndex(p.Column)
		if ci < 0 {
			return nil, info, fmt.Errorf("relstore: unknown column %q", p.Column)
		}
		colType := t.schema.Columns[ci].Type
		if p.Op == ContainsWord {
			if colType != Text || p.Arg.Type != Text {
				return nil, info, fmt.Errorf("relstore: ContainsWord requires Text column and argument")
			}
			continue
		}
		if p.Arg.Type != colType {
			return nil, info, fmt.Errorf("relstore: predicate on %q mixes %s with %s", p.Column, colType, p.Arg.Type)
		}
	}
	if q.OrderBy != "" && t.schema.ColIndex(q.OrderBy) < 0 {
		return nil, info, fmt.Errorf("relstore: unknown ORDER BY column %q", q.OrderBy)
	}

	candidateIDs, access := t.planAccess(q)
	info.Access = access
	info.RowsExamined = len(candidateIDs)

	// Residual filter.
	var out []Row
	for _, id := range candidateIDs {
		row := t.rows[id]
		if t.matches(row, q) {
			out = append(out, append(Row(nil), row...))
		}
	}

	// Order.
	if q.OrderBy != "" {
		ci := t.schema.ColIndex(q.OrderBy)
		sort.SliceStable(out, func(i, j int) bool {
			c := out[i][ci].Compare(out[j][ci])
			if q.Desc {
				return c > 0
			}
			return c < 0
		})
	} else if q.Desc {
		for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
			out[i], out[j] = out[j], out[i]
		}
	}
	if q.Limit > 0 && len(out) > q.Limit {
		out = out[:q.Limit]
	}
	return out, info, nil
}

// planAccess picks the cheapest access path: an equality B-tree probe if
// available, then a (possibly double-bounded) B-tree range combining every
// range predicate on one indexed column, then the spatial index if the
// query has a bounding box, else a full scan.
func (t *Table) planAccess(q Query) ([]int64, string) {
	// Prefer an equality predicate on an indexed column.
	for i := range q.Where {
		p := &q.Where[i]
		if p.Op != Eq {
			continue
		}
		idx, ok := t.indexes[p.Column]
		if !ok {
			continue
		}
		var ids []int64
		idx.ascendRange(&p.Arg, &p.Arg, func(_ Value, row int64) bool {
			ids = append(ids, row)
			return true
		})
		return ids, "index:" + p.Column
	}
	// Combine all range predicates per indexed column into [lo, hi] and
	// pick the first column that has any bound. Strict bounds (Lt/Gt) keep
	// the boundary value in the candidate set; the residual filter removes
	// it — the usual index-scan-plus-filter contract.
	var rangeCol string
	var lo, hi *Value
	for i := range q.Where {
		p := &q.Where[i]
		if p.Op == Eq || p.Op == ContainsWord {
			continue
		}
		if _, ok := t.indexes[p.Column]; !ok {
			continue
		}
		if rangeCol == "" {
			rangeCol = p.Column
		}
		if p.Column != rangeCol {
			continue
		}
		arg := p.Arg
		switch p.Op {
		case Lt, Le:
			if hi == nil || arg.Compare(*hi) < 0 {
				hi = &arg
			}
		case Gt, Ge:
			if lo == nil || arg.Compare(*lo) > 0 {
				lo = &arg
			}
		}
	}
	if rangeCol != "" {
		idx := t.indexes[rangeCol]
		var ids []int64
		idx.ascendRange(lo, hi, func(_ Value, row int64) bool {
			ids = append(ids, row)
			return true
		})
		return ids, "index:" + rangeCol
	}
	if q.Within != nil && t.spatial != nil {
		ids := t.spatial.tree.Search(nil, *q.Within)
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		return ids, "spatial"
	}
	return t.scanAllIDs(), "fullscan"
}

// matches evaluates all residual predicates on a row.
func (t *Table) matches(row Row, q Query) bool {
	for _, p := range q.Where {
		ci := t.schema.ColIndex(p.Column)
		v := row[ci]
		switch p.Op {
		case Eq:
			if v.Compare(p.Arg) != 0 {
				return false
			}
		case Lt:
			if v.Compare(p.Arg) >= 0 {
				return false
			}
		case Le:
			if v.Compare(p.Arg) > 0 {
				return false
			}
		case Gt:
			if v.Compare(p.Arg) <= 0 {
				return false
			}
		case Ge:
			if v.Compare(p.Arg) < 0 {
				return false
			}
		case ContainsWord:
			if !containsWord(v.S, p.Arg.S) {
				return false
			}
		}
	}
	if q.Within != nil {
		if t.spatial == nil {
			// Without a spatial index the bounding box is evaluated on the
			// conventional lat/lon columns when present.
			latCI := t.schema.ColIndex("lat")
			lonCI := t.schema.ColIndex("lon")
			if latCI < 0 || lonCI < 0 {
				return false
			}
			if !q.Within.Contains(geo.Point{Lat: row[latCI].F, Lon: row[lonCI].F}) {
				return false
			}
		} else if !q.Within.Contains(geo.Point{Lat: row[t.spatial.latCol].F, Lon: row[t.spatial.lonCol].F}) {
			return false
		}
	}
	return true
}

func containsWord(words, w string) bool {
	for len(words) > 0 {
		i := strings.IndexByte(words, ' ')
		var tok string
		if i < 0 {
			tok, words = words, ""
		} else {
			tok, words = words[:i], words[i+1:]
		}
		if tok == w {
			return true
		}
	}
	return false
}
