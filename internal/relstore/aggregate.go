package relstore

import (
	"fmt"
	"sort"
)

// AggFunc enumerates aggregate functions.
type AggFunc int

// Aggregate functions. Count ignores its column; the numeric aggregates
// require an Int or Float column.
const (
	Count AggFunc = iota
	Sum
	Avg
	Min
	Max
)

// String implements fmt.Stringer.
func (f AggFunc) String() string {
	switch f {
	case Count:
		return "COUNT"
	case Sum:
		return "SUM"
	case Avg:
		return "AVG"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	default:
		return fmt.Sprintf("AggFunc(%d)", int(f))
	}
}

// Aggregation is one aggregate expression, e.g. {Avg, "hotness"}.
type Aggregation struct {
	Func   AggFunc
	Column string // ignored for Count
}

// GroupRow is one output group: the grouping key plus one value per
// requested aggregation, in request order.
type GroupRow struct {
	Key    Value
	Values []float64
}

// GroupBy evaluates the query's WHERE/Within filters, groups surviving rows
// by groupCol and computes the aggregations per group. Groups come back in
// ascending key order. An empty groupCol produces a single global group
// whose key is the Int value 0.
func (t *Table) GroupBy(q Query, groupCol string, aggs []Aggregation) ([]GroupRow, error) {
	if len(aggs) == 0 {
		return nil, fmt.Errorf("relstore: GroupBy needs at least one aggregation")
	}
	var groupCI int
	if groupCol == "" {
		groupCI = -1
	} else {
		groupCI = t.schema.ColIndex(groupCol)
		if groupCI < 0 {
			return nil, fmt.Errorf("relstore: unknown group column %q", groupCol)
		}
	}
	aggCIs := make([]int, len(aggs))
	for i, a := range aggs {
		if a.Func == Count {
			aggCIs[i] = -1
			continue
		}
		ci := t.schema.ColIndex(a.Column)
		if ci < 0 {
			return nil, fmt.Errorf("relstore: unknown aggregate column %q", a.Column)
		}
		typ := t.schema.Columns[ci].Type
		if typ != Int && typ != Float {
			return nil, fmt.Errorf("relstore: %s(%s) requires a numeric column", a.Func, a.Column)
		}
		aggCIs[i] = ci
	}
	// Ordering/limit make no sense on the input rows; reuse Select for
	// filtering only.
	q.OrderBy = ""
	q.Desc = false
	q.Limit = 0
	rows, _, err := t.Select(q)
	if err != nil {
		return nil, err
	}

	type acc struct {
		key    Value
		count  int
		sums   []float64
		mins   []float64
		maxs   []float64
		seeded bool
	}
	groups := map[string]*acc{}
	keyOf := func(r Row) Value {
		if groupCI < 0 {
			return IntVal(0)
		}
		return r[groupCI]
	}
	numeric := func(v Value) float64 {
		if v.Type == Int {
			return float64(v.I)
		}
		return v.F
	}
	for _, r := range rows {
		k := keyOf(r)
		g := groups[k.String()]
		if g == nil {
			g = &acc{
				key:  k,
				sums: make([]float64, len(aggs)),
				mins: make([]float64, len(aggs)),
				maxs: make([]float64, len(aggs)),
			}
			groups[k.String()] = g
		}
		g.count++
		for i, ci := range aggCIs {
			if ci < 0 {
				continue
			}
			v := numeric(r[ci])
			g.sums[i] += v
			if !g.seeded || v < g.mins[i] {
				g.mins[i] = v
			}
			if !g.seeded || v > g.maxs[i] {
				g.maxs[i] = v
			}
		}
		g.seeded = true
	}
	out := make([]GroupRow, 0, len(groups))
	for _, g := range groups {
		row := GroupRow{Key: g.key, Values: make([]float64, len(aggs))}
		for i, a := range aggs {
			switch a.Func {
			case Count:
				row.Values[i] = float64(g.count)
			case Sum:
				row.Values[i] = g.sums[i]
			case Avg:
				row.Values[i] = g.sums[i] / float64(g.count)
			case Min:
				row.Values[i] = g.mins[i]
			case Max:
				row.Values[i] = g.maxs[i]
			}
		}
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key.Compare(out[j].Key) < 0 })
	return out, nil
}
