package relstore

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"modissense/internal/geo"
)

// TestDoubleBoundedRangeUsesOneIndexScan verifies the planner folds
// Ge+Le (and Gt/Lt) predicates on one indexed column into a single
// bounded B-tree range.
func TestDoubleBoundedRangeUsesOneIndexScan(t *testing.T) {
	tbl := newPOITable(t)
	if err := tbl.CreateIndex("hotness"); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 100; i++ {
		if err := tbl.Insert(poiRow(i, fmt.Sprintf("p%d", i), 37, 23, "x", float64(i)/100, 0)); err != nil {
			t.Fatal(err)
		}
	}
	rows, info, err := tbl.Select(Query{Where: []Predicate{
		{Column: "hotness", Op: Ge, Arg: FloatVal(0.30)},
		{Column: "hotness", Op: Le, Arg: FloatVal(0.39)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if info.Access != "index:hotness" {
		t.Errorf("access = %q", info.Access)
	}
	if len(rows) != 10 {
		t.Errorf("rows = %d, want 10", len(rows))
	}
	// Both bounds applied at the index: candidates must not include the
	// whole table.
	if info.RowsExamined != 10 {
		t.Errorf("rows examined = %d, want 10 (double-bounded scan)", info.RowsExamined)
	}
	// Strict bounds still return correct results (boundary removed by the
	// residual filter even though the index scan included it).
	rows, info, err = tbl.Select(Query{Where: []Predicate{
		{Column: "hotness", Op: Gt, Arg: FloatVal(0.30)},
		{Column: "hotness", Op: Lt, Arg: FloatVal(0.39)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Errorf("strict-bounds rows = %d, want 8", len(rows))
	}
	// Contradictory bounds return nothing.
	rows, _, err = tbl.Select(Query{Where: []Predicate{
		{Column: "hotness", Op: Ge, Arg: FloatVal(0.9)},
		{Column: "hotness", Op: Le, Arg: FloatVal(0.1)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Errorf("contradictory bounds returned %d rows", len(rows))
	}
}

// TestSelectMatchesFullScanOracle cross-checks arbitrary indexed queries
// against the same query on an unindexed copy of the table.
func TestSelectMatchesFullScanOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	indexed := newPOITable(t)
	plain := newPOITable(t)
	if err := indexed.CreateIndex("hotness"); err != nil {
		t.Fatal(err)
	}
	if err := indexed.CreateIndex("name"); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 300; i++ {
		row := poiRow(i, fmt.Sprintf("poi-%03d", rng.Intn(50)), 37, 23, "kw", rng.Float64(), rng.Float64())
		if err := indexed.Insert(row); err != nil {
			t.Fatal(err)
		}
		if err := plain.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	ops := []Op{Eq, Lt, Le, Gt, Ge}
	for trial := 0; trial < 100; trial++ {
		var preds []Predicate
		for n := 0; n < 1+rng.Intn(2); n++ {
			if rng.Intn(2) == 0 {
				preds = append(preds, Predicate{
					Column: "hotness", Op: ops[rng.Intn(len(ops))], Arg: FloatVal(rng.Float64()),
				})
			} else {
				preds = append(preds, Predicate{
					Column: "name", Op: ops[rng.Intn(len(ops))], Arg: TextVal(fmt.Sprintf("poi-%03d", rng.Intn(50))),
				})
			}
		}
		q := Query{Where: preds, OrderBy: "id"}
		a, infoA, err := indexed.Select(q)
		if err != nil {
			t.Fatal(err)
		}
		b, infoB, err := plain.Select(q)
		if err != nil {
			t.Fatal(err)
		}
		if infoB.Access != "fullscan" {
			t.Fatalf("oracle must fullscan, got %s", infoB.Access)
		}
		if len(a) != len(b) {
			t.Fatalf("trial %d (%v, %s): indexed %d rows, oracle %d", trial, preds, infoA.Access, len(a), len(b))
		}
		for i := range a {
			if a[i][0].I != b[i][0].I {
				t.Fatalf("trial %d row %d: id %d vs %d", trial, i, a[i][0].I, b[i][0].I)
			}
		}
	}
}

// TestBTreeInsertDeleteQuick drives the index through testing/quick.
func TestBTreeInsertDeleteQuick(t *testing.T) {
	f := func(values []int16, deletions []int16) bool {
		bt, err := newBTree(3)
		if err != nil {
			return false
		}
		present := map[int64]bool{}
		for _, v := range values {
			bt.insert(IntVal(int64(v)), int64(v))
			present[int64(v)] = true
		}
		for _, d := range deletions {
			got := bt.delete(IntVal(int64(d)), int64(d))
			if got != present[int64(d)] {
				return false
			}
			delete(present, int64(d))
		}
		if bt.len() != len(present) {
			return false
		}
		return bt.checkInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestGroupByAggregates(t *testing.T) {
	tbl := newPOITable(t)
	data := []struct {
		id  int64
		cat string
		hot float64
	}{
		{1, "restaurant", 0.9}, {2, "restaurant", 0.5}, {3, "restaurant", 0.1},
		{4, "bar", 0.8}, {5, "bar", 0.2},
		{6, "museum", 0.6},
	}
	for _, d := range data {
		if err := tbl.Insert(poiRow(d.id, d.cat, 37, 23, d.cat, d.hot, 0)); err != nil {
			t.Fatal(err)
		}
	}
	rows, err := tbl.GroupBy(Query{}, "name", []Aggregation{
		{Func: Count},
		{Func: Avg, Column: "hotness"},
		{Func: Min, Column: "hotness"},
		{Func: Max, Column: "hotness"},
		{Func: Sum, Column: "hotness"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("groups = %d, want 3", len(rows))
	}
	// Sorted by key: bar, museum, restaurant.
	bar := rows[0]
	if bar.Key.S != "bar" || bar.Values[0] != 2 || !close(bar.Values[1], 0.5) || bar.Values[2] != 0.2 || bar.Values[3] != 0.8 || !close(bar.Values[4], 1.0) {
		t.Errorf("bar group = %+v", bar)
	}
	rest := rows[2]
	if rest.Key.S != "restaurant" || rest.Values[0] != 3 || !close(rest.Values[1], 0.5) {
		t.Errorf("restaurant group = %+v", rest)
	}

	// Filtered global aggregate (no group column).
	global, err := tbl.GroupBy(Query{Where: []Predicate{{Column: "hotness", Op: Ge, Arg: FloatVal(0.5)}}}, "", []Aggregation{{Func: Count}})
	if err != nil {
		t.Fatal(err)
	}
	if len(global) != 1 || global[0].Values[0] != 4 {
		t.Errorf("global = %+v", global)
	}

	// Validation.
	if _, err := tbl.GroupBy(Query{}, "name", nil); err == nil {
		t.Error("no aggregations must fail")
	}
	if _, err := tbl.GroupBy(Query{}, "ghost", []Aggregation{{Func: Count}}); err == nil {
		t.Error("unknown group column must fail")
	}
	if _, err := tbl.GroupBy(Query{}, "name", []Aggregation{{Func: Avg, Column: "ghost"}}); err == nil {
		t.Error("unknown aggregate column must fail")
	}
	if _, err := tbl.GroupBy(Query{}, "name", []Aggregation{{Func: Avg, Column: "name"}}); err == nil {
		t.Error("AVG over text must fail")
	}
	// Empty table → no groups.
	empty := newPOITable(t)
	none, err := empty.GroupBy(Query{}, "name", []Aggregation{{Func: Count}})
	if err != nil || len(none) != 0 {
		t.Errorf("empty table groups = %v, %v", none, err)
	}
}

func close(a, b float64) bool { d := a - b; return d < 1e-9 && d > -1e-9 }

func BenchmarkSelectSpatialKeyword(b *testing.B) {
	tbl := newPOITable(b)
	rng := rand.New(rand.NewSource(6))
	for i := int64(0); i < 8500; i++ {
		lat := 34.8 + rng.Float64()*7
		lon := 19.3 + rng.Float64()*9
		kw := []string{"restaurant food", "bar drinks", "museum history"}[rng.Intn(3)]
		if err := tbl.Insert(poiRow(i, fmt.Sprintf("poi-%d", i), lat, lon, kw, rng.Float64(), 0)); err != nil {
			b.Fatal(err)
		}
	}
	if err := tbl.CreateSpatialIndex("lat", "lon"); err != nil {
		b.Fatal(err)
	}
	if err := tbl.CreateIndex("hotness"); err != nil {
		b.Fatal(err)
	}
	box := geo.RectAround(geo.Point{Lat: 37.98, Lon: 23.72}, 50000)
	q := Query{
		Within:  &box,
		Where:   []Predicate{{Column: "keywords", Op: ContainsWord, Arg: TextVal("restaurant")}},
		OrderBy: "hotness",
		Desc:    true,
		Limit:   10,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tbl.Select(q); err != nil {
			b.Fatal(err)
		}
	}
}
