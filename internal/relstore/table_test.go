package relstore

import (
	"fmt"
	"math/rand"
	"testing"

	"modissense/internal/geo"
)

func poiSchema(t testing.TB) *Schema {
	t.Helper()
	s, err := NewSchema(
		Column{"id", Int},
		Column{"name", Text},
		Column{"lat", Float},
		Column{"lon", Float},
		Column{"keywords", Text},
		Column{"hotness", Float},
		Column{"interest", Float},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func poiRow(id int64, name string, lat, lon float64, keywords string, hot, interest float64) Row {
	return Row{IntVal(id), TextVal(name), FloatVal(lat), FloatVal(lon), TextVal(keywords), FloatVal(hot), FloatVal(interest)}
}

func newPOITable(t testing.TB) *Table {
	t.Helper()
	tbl, err := NewTable("pois", poiSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestSchemaValidation(t *testing.T) {
	if _, err := NewSchema(); err == nil {
		t.Error("empty schema must fail")
	}
	if _, err := NewSchema(Column{"id", Text}); err == nil {
		t.Error("non-Int primary key must fail")
	}
	if _, err := NewSchema(Column{"id", Int}, Column{"id", Text}); err == nil {
		t.Error("duplicate column must fail")
	}
	if _, err := NewSchema(Column{"id", Int}, Column{"", Text}); err == nil {
		t.Error("empty column name must fail")
	}
}

func TestTableInsertGetUpdateDelete(t *testing.T) {
	tbl := newPOITable(t)
	r := poiRow(1, "acropolis", 37.97, 23.72, "museum history", 0.9, 0.8)
	if err := tbl.Insert(r); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(r); err == nil {
		t.Error("duplicate primary key must fail")
	}
	if err := tbl.Insert(Row{IntVal(2)}); err == nil {
		t.Error("arity mismatch must fail")
	}
	got, ok := tbl.Get(1)
	if !ok || got[1].S != "acropolis" {
		t.Fatalf("Get(1) = %v, %v", got, ok)
	}
	// Returned row is a copy.
	got[1] = TextVal("mutated")
	got2, _ := tbl.Get(1)
	if got2[1].S != "acropolis" {
		t.Error("Get must return a defensive copy")
	}

	upd := poiRow(1, "acropolis", 37.97, 23.72, "museum history ancient", 0.95, 0.85)
	if err := tbl.Update(upd); err != nil {
		t.Fatal(err)
	}
	got3, _ := tbl.Get(1)
	if got3[5].F != 0.95 {
		t.Errorf("hotness after update = %v", got3[5].F)
	}
	if err := tbl.Update(poiRow(99, "x", 0, 0, "", 0, 0)); err == nil {
		t.Error("update of missing row must fail")
	}

	deleted, err := tbl.Delete(1)
	if err != nil || !deleted {
		t.Fatalf("Delete(1) = %v, %v", deleted, err)
	}
	deleted, err = tbl.Delete(1)
	if err != nil || deleted {
		t.Error("second delete must report not found")
	}
}

func TestIndexMaintainedAcrossMutations(t *testing.T) {
	tbl := newPOITable(t)
	if err := tbl.CreateIndex("hotness"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateIndex("hotness"); err == nil {
		t.Error("duplicate index must fail")
	}
	if err := tbl.CreateIndex("nope"); err == nil {
		t.Error("index on unknown column must fail")
	}
	for i := int64(0); i < 20; i++ {
		if err := tbl.Insert(poiRow(i, fmt.Sprintf("poi-%d", i), 37, 23, "bar", float64(i)/20, 0)); err != nil {
			t.Fatal(err)
		}
	}
	// Indexed range query.
	rows, info, err := tbl.Select(Query{Where: []Predicate{{Column: "hotness", Op: Ge, Arg: FloatVal(0.75)}}})
	if err != nil {
		t.Fatal(err)
	}
	if info.Access != "index:hotness" {
		t.Errorf("access = %q, want index:hotness", info.Access)
	}
	if len(rows) != 5 {
		t.Errorf("got %d rows, want 5", len(rows))
	}
	// Update moves a row across the threshold; index must follow.
	if err := tbl.Update(poiRow(0, "poi-0", 37, 23, "bar", 0.99, 0)); err != nil {
		t.Fatal(err)
	}
	rows, _, _ = tbl.Select(Query{Where: []Predicate{{Column: "hotness", Op: Ge, Arg: FloatVal(0.75)}}})
	if len(rows) != 6 {
		t.Errorf("after update got %d rows, want 6", len(rows))
	}
	// Delete removes from index.
	if _, err := tbl.Delete(19); err != nil {
		t.Fatal(err)
	}
	rows, _, _ = tbl.Select(Query{Where: []Predicate{{Column: "hotness", Op: Ge, Arg: FloatVal(0.75)}}})
	if len(rows) != 5 {
		t.Errorf("after delete got %d rows, want 5", len(rows))
	}
}

func TestSpatialIndexQueries(t *testing.T) {
	tbl := newPOITable(t)
	rng := rand.New(rand.NewSource(5))
	n := 500
	for i := int64(0); i < int64(n); i++ {
		lat := 34.8 + rng.Float64()*7
		lon := 19.3 + rng.Float64()*9
		if err := tbl.Insert(poiRow(i, fmt.Sprintf("poi-%d", i), lat, lon, "bar", rng.Float64(), rng.Float64())); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.CreateSpatialIndex("lat", "lon"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateSpatialIndex("lat", "lon"); err == nil {
		t.Error("second spatial index must fail")
	}
	box := geo.Rect{MinLat: 37, MinLon: 23, MaxLat: 38.5, MaxLon: 24.5}
	rows, info, err := tbl.Select(Query{Within: &box})
	if err != nil {
		t.Fatal(err)
	}
	if info.Access != "spatial" {
		t.Errorf("access = %q, want spatial", info.Access)
	}
	// Oracle count.
	want := 0
	for i := int64(0); i < int64(n); i++ {
		r, _ := tbl.Get(i)
		if box.Contains(geo.Point{Lat: r[2].F, Lon: r[3].F}) {
			want++
		}
	}
	if len(rows) != want {
		t.Errorf("spatial select = %d rows, oracle %d", len(rows), want)
	}
	for _, r := range rows {
		if !box.Contains(geo.Point{Lat: r[2].F, Lon: r[3].F}) {
			t.Errorf("row %d outside box", r[0].I)
		}
	}
	// Spatial tables support deletes and coordinate moves with full index
	// maintenance.
	inBox := rows[0][0].I
	deleted, err := tbl.Delete(inBox)
	if err != nil || !deleted {
		t.Fatalf("spatial delete = %v, %v", deleted, err)
	}
	after, _, err := tbl.Select(Query{Within: &box})
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != want-1 {
		t.Errorf("after delete spatial select = %d rows, want %d", len(after), want-1)
	}
	// Move a row from inside the box to far outside; the index must follow.
	moveID := after[0][0].I
	r0, _ := tbl.Get(moveID)
	moved := append(Row(nil), r0...)
	moved[2] = FloatVal(34.9)
	moved[3] = FloatVal(19.4)
	if err := tbl.Update(moved); err != nil {
		t.Fatal(err)
	}
	after2, _, _ := tbl.Select(Query{Within: &box})
	if len(after2) != want-2 {
		t.Errorf("after move spatial select = %d rows, want %d", len(after2), want-2)
	}
	// And it is findable at its new location.
	newBox := geo.RectAround(geo.Point{Lat: 34.9, Lon: 19.4}, 1000)
	found, _, _ := tbl.Select(Query{Within: &newBox})
	match := false
	for _, r := range found {
		if r[0].I == moveID {
			match = true
		}
	}
	if !match {
		t.Error("moved row not found at its new location")
	}
}

func TestSpatialFallbackWithoutIndex(t *testing.T) {
	tbl := newPOITable(t)
	if err := tbl.Insert(poiRow(1, "in", 37.5, 23.5, "bar", 0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(poiRow(2, "out", 40.0, 26.0, "bar", 0, 0)); err != nil {
		t.Fatal(err)
	}
	box := geo.Rect{MinLat: 37, MinLon: 23, MaxLat: 38, MaxLon: 24}
	rows, info, err := tbl.Select(Query{Within: &box})
	if err != nil {
		t.Fatal(err)
	}
	if info.Access != "fullscan" {
		t.Errorf("access = %q, want fullscan", info.Access)
	}
	if len(rows) != 1 || rows[0][0].I != 1 {
		t.Errorf("rows = %v", rows)
	}
}

func TestSelectPredicatesOrderingLimit(t *testing.T) {
	tbl := newPOITable(t)
	data := []struct {
		id       int64
		name     string
		keywords string
		hot      float64
	}{
		{1, "taverna-a", "restaurant greek", 0.5},
		{2, "burger-b", "restaurant fastfood", 0.9},
		{3, "museum-c", "museum history", 0.3},
		{4, "taverna-d", "restaurant greek seafood", 0.7},
		{5, "bar-e", "bar cocktails", 0.8},
	}
	for _, d := range data {
		if err := tbl.Insert(poiRow(d.id, d.name, 37.9, 23.7, d.keywords, d.hot, 0)); err != nil {
			t.Fatal(err)
		}
	}
	// Keyword + order by hotness desc + limit.
	rows, _, err := tbl.Select(Query{
		Where:   []Predicate{{Column: "keywords", Op: ContainsWord, Arg: TextVal("restaurant")}},
		OrderBy: "hotness",
		Desc:    true,
		Limit:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0][0].I != 2 || rows[1][0].I != 4 {
		t.Errorf("top restaurants = %v", rows)
	}
	// ContainsWord must not match substrings.
	rows, _, _ = tbl.Select(Query{Where: []Predicate{{Column: "keywords", Op: ContainsWord, Arg: TextVal("rest")}}})
	if len(rows) != 0 {
		t.Errorf("substring must not match, got %d rows", len(rows))
	}
	// Equality on Text.
	rows, _, _ = tbl.Select(Query{Where: []Predicate{{Column: "name", Op: Eq, Arg: TextVal("bar-e")}}})
	if len(rows) != 1 || rows[0][0].I != 5 {
		t.Errorf("name equality = %v", rows)
	}
	// Conjunction.
	rows, _, _ = tbl.Select(Query{Where: []Predicate{
		{Column: "keywords", Op: ContainsWord, Arg: TextVal("restaurant")},
		{Column: "hotness", Op: Lt, Arg: FloatVal(0.6)},
	}})
	if len(rows) != 1 || rows[0][0].I != 1 {
		t.Errorf("conjunction = %v", rows)
	}
}

func TestSelectErrors(t *testing.T) {
	tbl := newPOITable(t)
	if _, _, err := tbl.Select(Query{Where: []Predicate{{Column: "ghost", Op: Eq, Arg: IntVal(1)}}}); err == nil {
		t.Error("unknown column must fail")
	}
	if _, _, err := tbl.Select(Query{Where: []Predicate{{Column: "hotness", Op: Eq, Arg: TextVal("x")}}}); err == nil {
		t.Error("type mismatch must fail")
	}
	if _, _, err := tbl.Select(Query{OrderBy: "ghost"}); err == nil {
		t.Error("unknown order-by column must fail")
	}
	if _, _, err := tbl.Select(Query{Where: []Predicate{{Column: "hotness", Op: ContainsWord, Arg: TextVal("x")}}}); err == nil {
		t.Error("ContainsWord on Float must fail")
	}
}

func TestSelectEqualityUsesIndex(t *testing.T) {
	tbl := newPOITable(t)
	if err := tbl.CreateIndex("name"); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 100; i++ {
		if err := tbl.Insert(poiRow(i, fmt.Sprintf("poi-%03d", i), 37, 23, "x", 0, 0)); err != nil {
			t.Fatal(err)
		}
	}
	rows, info, err := tbl.Select(Query{Where: []Predicate{{Column: "name", Op: Eq, Arg: TextVal("poi-042")}}})
	if err != nil {
		t.Fatal(err)
	}
	if info.Access != "index:name" {
		t.Errorf("access = %q", info.Access)
	}
	if info.RowsExamined != 1 {
		t.Errorf("rows examined = %d, want 1", info.RowsExamined)
	}
	if len(rows) != 1 || rows[0][0].I != 42 {
		t.Errorf("rows = %v", rows)
	}
}

func TestDBTableManagement(t *testing.T) {
	db := NewDB()
	s := poiSchema(t)
	if _, err := db.CreateTable("pois", s); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("pois", s); err == nil {
		t.Error("duplicate table must fail")
	}
	if _, err := db.Table("pois"); err != nil {
		t.Error(err)
	}
	if _, err := db.Table("ghost"); err == nil {
		t.Error("missing table must fail")
	}
	if _, err := db.CreateTable("blogs", s); err != nil {
		t.Fatal(err)
	}
	names := db.TableNames()
	if len(names) != 2 || names[0] != "blogs" || names[1] != "pois" {
		t.Errorf("names = %v", names)
	}
}

func TestValueCompareAndString(t *testing.T) {
	if IntVal(1).Compare(IntVal(2)) != -1 || IntVal(2).Compare(IntVal(2)) != 0 || IntVal(3).Compare(IntVal(2)) != 1 {
		t.Error("int compare broken")
	}
	if FloatVal(1.5).Compare(FloatVal(2.5)) != -1 {
		t.Error("float compare broken")
	}
	if TextVal("a").Compare(TextVal("b")) != -1 {
		t.Error("text compare broken")
	}
	if BoolVal(false).Compare(BoolVal(true)) != -1 || BoolVal(true).Compare(BoolVal(false)) != 1 || BoolVal(true).Compare(BoolVal(true)) != 0 {
		t.Error("bool compare broken")
	}
	defer func() {
		if recover() == nil {
			t.Error("cross-type compare must panic")
		}
	}()
	IntVal(1).Compare(TextVal("x"))
}
