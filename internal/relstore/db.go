package relstore

import (
	"fmt"
	"sort"
	"sync"
)

// DB is a named collection of tables — the "PostgreSQL server" of the
// platform. Safe for concurrent use.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// NewDB creates an empty database.
func NewDB() *DB {
	return &DB{tables: make(map[string]*Table)}
}

// CreateTable creates and registers a table.
func (db *DB) CreateTable(name string, schema *Schema) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.tables[name]; dup {
		return nil, fmt.Errorf("relstore: table %q already exists", name)
	}
	t, err := NewTable(name, schema)
	if err != nil {
		return nil, err
	}
	db.tables[name] = t
	return t, nil
}

// Table returns the named table, or an error if absent.
func (db *DB) Table(name string) (*Table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("relstore: no table %q", name)
	}
	return t, nil
}

// TableNames lists tables in sorted order.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
