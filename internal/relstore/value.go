// Package relstore implements the relational substrate of the platform: an
// in-memory, typed, indexed table store playing the role PostgreSQL plays in
// the original MoDisSENSE deployment. The POI and Blogs repositories live
// here because they serve heavy random-access read loads with rich
// predicates (spatial containment, keyword membership, ordering by computed
// scores) and only light write traffic.
//
// The store provides B-tree secondary indexes, an R-tree spatial index and
// a small planner that picks the cheapest access path for a query.
package relstore

import (
	"fmt"
	"strings"
)

// ColType enumerates the supported column types.
type ColType int

// Supported column types.
const (
	Int ColType = iota
	Float
	Text
	Bool
)

// String implements fmt.Stringer.
func (t ColType) String() string {
	switch t {
	case Int:
		return "INT"
	case Float:
		return "FLOAT"
	case Text:
		return "TEXT"
	case Bool:
		return "BOOL"
	default:
		return fmt.Sprintf("ColType(%d)", int(t))
	}
}

// Value is a dynamically typed cell value. Exactly one use-pattern is
// supported per type: Int → int64, Float → float64, Text → string,
// Bool → bool.
type Value struct {
	Type ColType
	I    int64
	F    float64
	S    string
	B    bool
}

// IntVal builds an Int value.
func IntVal(v int64) Value { return Value{Type: Int, I: v} }

// FloatVal builds a Float value.
func FloatVal(v float64) Value { return Value{Type: Float, F: v} }

// TextVal builds a Text value.
func TextVal(v string) Value { return Value{Type: Text, S: v} }

// BoolVal builds a Bool value.
func BoolVal(v bool) Value { return Value{Type: Bool, B: v} }

// String implements fmt.Stringer.
func (v Value) String() string {
	switch v.Type {
	case Int:
		return fmt.Sprintf("%d", v.I)
	case Float:
		return fmt.Sprintf("%g", v.F)
	case Text:
		return v.S
	case Bool:
		return fmt.Sprintf("%t", v.B)
	default:
		return "?"
	}
}

// Compare orders two values of the same type: -1, 0, +1. Comparing values
// of different types is a programming error and panics, matching the
// planner's invariant that predicates are type-checked before execution.
func (v Value) Compare(o Value) int {
	if v.Type != o.Type {
		panic(fmt.Sprintf("relstore: comparing %s with %s", v.Type, o.Type))
	}
	switch v.Type {
	case Int:
		switch {
		case v.I < o.I:
			return -1
		case v.I > o.I:
			return 1
		}
		return 0
	case Float:
		switch {
		case v.F < o.F:
			return -1
		case v.F > o.F:
			return 1
		}
		return 0
	case Text:
		return strings.Compare(v.S, o.S)
	case Bool:
		switch {
		case !v.B && o.B:
			return -1
		case v.B && !o.B:
			return 1
		}
		return 0
	default:
		panic(fmt.Sprintf("relstore: unknown type %d", v.Type))
	}
}

// Column describes one table column.
type Column struct {
	Name string
	Type ColType
}

// Schema is an ordered column list. The first column is always the primary
// key and must be of type Int.
type Schema struct {
	Columns []Column
	byName  map[string]int
}

// NewSchema validates and builds a schema.
func NewSchema(cols ...Column) (*Schema, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("relstore: schema needs at least one column")
	}
	if cols[0].Type != Int {
		return nil, fmt.Errorf("relstore: primary key column %q must be Int", cols[0].Name)
	}
	s := &Schema{Columns: cols, byName: make(map[string]int, len(cols))}
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("relstore: column %d has empty name", i)
		}
		if _, dup := s.byName[c.Name]; dup {
			return nil, fmt.Errorf("relstore: duplicate column %q", c.Name)
		}
		s.byName[c.Name] = i
	}
	return s, nil
}

// ColIndex returns the position of the named column, or -1.
func (s *Schema) ColIndex(name string) int {
	if i, ok := s.byName[name]; ok {
		return i
	}
	return -1
}

// Row is one tuple, positionally matching the schema.
type Row []Value

// validate checks a row against the schema.
func (s *Schema) validate(r Row) error {
	if len(r) != len(s.Columns) {
		return fmt.Errorf("relstore: row has %d values, schema has %d columns", len(r), len(s.Columns))
	}
	for i, v := range r {
		if v.Type != s.Columns[i].Type {
			return fmt.Errorf("relstore: column %q expects %s, got %s", s.Columns[i].Name, s.Columns[i].Type, v.Type)
		}
	}
	return nil
}
