package relstore

import "fmt"

// btree is a B-tree mapping (Value, rowID) pairs to nothing — a secondary
// index. Duplicate column values are allowed; the rowID disambiguates
// entries, so deletes are exact. Range scans stream entries in
// (value, rowID) order.
//
// The implementation is a classic order-m B-tree with proactive splitting
// on descent (split full children before entering them), which keeps the
// insert path single-pass.
type btree struct {
	root   *btreeNode
	degree int // minimum degree t: nodes hold t-1..2t-1 keys
	size   int
}

type btreeKey struct {
	val Value
	row int64
}

func (k btreeKey) less(o btreeKey) bool {
	if c := k.val.Compare(o.val); c != 0 {
		return c < 0
	}
	return k.row < o.row
}

type btreeNode struct {
	keys     []btreeKey
	children []*btreeNode // nil for leaves
}

func (n *btreeNode) leaf() bool { return n.children == nil }

// newBTree creates an empty B-tree with the given minimum degree (>= 2).
func newBTree(degree int) (*btree, error) {
	if degree < 2 {
		return nil, fmt.Errorf("relstore: btree degree must be >= 2, got %d", degree)
	}
	return &btree{root: &btreeNode{}, degree: degree}, nil
}

func (t *btree) maxKeys() int { return 2*t.degree - 1 }

// insert adds the (value, rowID) entry. Duplicate exact entries are
// ignored (the index is a set).
func (t *btree) insert(val Value, row int64) {
	k := btreeKey{val: val, row: row}
	if t.contains(k) {
		return
	}
	if len(t.root.keys) == t.maxKeys() {
		old := t.root
		t.root = &btreeNode{children: []*btreeNode{old}}
		t.splitChild(t.root, 0)
	}
	t.insertNonFull(t.root, k)
	t.size++
}

func (t *btree) insertNonFull(n *btreeNode, k btreeKey) {
	i := n.search(k)
	if n.leaf() {
		n.keys = append(n.keys, btreeKey{})
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = k
		return
	}
	if len(n.children[i].keys) == t.maxKeys() {
		t.splitChild(n, i)
		if n.keys[i].less(k) {
			i++
		}
	}
	t.insertNonFull(n.children[i], k)
}

// search returns the index of the first key >= k.
func (n *btreeNode) search(k btreeKey) int {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if n.keys[mid].less(k) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// splitChild splits the full child at index i of parent n.
func (t *btree) splitChild(n *btreeNode, i int) {
	child := n.children[i]
	mid := t.degree - 1
	midKey := child.keys[mid]
	right := &btreeNode{keys: append([]btreeKey(nil), child.keys[mid+1:]...)}
	if !child.leaf() {
		right.children = append([]*btreeNode(nil), child.children[mid+1:]...)
		child.children = child.children[:mid+1]
	}
	child.keys = child.keys[:mid]

	n.keys = append(n.keys, btreeKey{})
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = midKey
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
}

// contains reports whether the exact entry exists.
func (t *btree) contains(k btreeKey) bool {
	n := t.root
	for {
		i := n.search(k)
		if i < len(n.keys) && !k.less(n.keys[i]) && !n.keys[i].less(k) {
			return true
		}
		if n.leaf() {
			return false
		}
		n = n.children[i]
	}
}

// delete removes the exact entry if present, returning whether it was found.
// Deletion uses the standard CLRS algorithm, rebalancing on descent so that
// every visited node (except the root) has at least t keys.
func (t *btree) delete(val Value, row int64) bool {
	k := btreeKey{val: val, row: row}
	if !t.contains(k) {
		return false
	}
	t.deleteFrom(t.root, k)
	if len(t.root.keys) == 0 && !t.root.leaf() {
		t.root = t.root.children[0]
	}
	t.size--
	return true
}

func (t *btree) deleteFrom(n *btreeNode, k btreeKey) {
	i := n.search(k)
	found := i < len(n.keys) && !k.less(n.keys[i]) && !n.keys[i].less(k)
	if n.leaf() {
		if found {
			n.keys = append(n.keys[:i], n.keys[i+1:]...)
		}
		return
	}
	if found {
		// Replace with predecessor or successor, or merge.
		if len(n.children[i].keys) >= t.degree {
			pred := n.children[i]
			for !pred.leaf() {
				pred = pred.children[len(pred.children)-1]
			}
			n.keys[i] = pred.keys[len(pred.keys)-1]
			t.deleteFrom(n.children[i], n.keys[i])
			return
		}
		if len(n.children[i+1].keys) >= t.degree {
			succ := n.children[i+1]
			for !succ.leaf() {
				succ = succ.children[0]
			}
			n.keys[i] = succ.keys[0]
			t.deleteFrom(n.children[i+1], n.keys[i])
			return
		}
		t.mergeChildren(n, i)
		t.deleteFrom(n.children[i], k)
		return
	}
	// Descend, topping up the child first if it is minimal.
	child := n.children[i]
	if len(child.keys) == t.degree-1 {
		switch {
		case i > 0 && len(n.children[i-1].keys) >= t.degree:
			// Borrow from left sibling.
			left := n.children[i-1]
			child.keys = append([]btreeKey{n.keys[i-1]}, child.keys...)
			n.keys[i-1] = left.keys[len(left.keys)-1]
			left.keys = left.keys[:len(left.keys)-1]
			if !left.leaf() {
				child.children = append([]*btreeNode{left.children[len(left.children)-1]}, child.children...)
				left.children = left.children[:len(left.children)-1]
			}
		case i < len(n.children)-1 && len(n.children[i+1].keys) >= t.degree:
			// Borrow from right sibling.
			right := n.children[i+1]
			child.keys = append(child.keys, n.keys[i])
			n.keys[i] = right.keys[0]
			right.keys = right.keys[1:]
			if !right.leaf() {
				child.children = append(child.children, right.children[0])
				right.children = right.children[1:]
			}
		case i > 0:
			t.mergeChildren(n, i-1)
			child = n.children[i-1]
		default:
			t.mergeChildren(n, i)
		}
	}
	t.deleteFrom(child, k)
}

// mergeChildren merges child i, separator key i and child i+1 of n.
func (t *btree) mergeChildren(n *btreeNode, i int) {
	left, right := n.children[i], n.children[i+1]
	left.keys = append(left.keys, n.keys[i])
	left.keys = append(left.keys, right.keys...)
	if !left.leaf() {
		left.children = append(left.children, right.children...)
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
}

// ascendRange streams entries with lo <= value <= hi (nil bounds are open)
// in order, calling fn(value, rowID); returning false stops the walk.
func (t *btree) ascendRange(lo, hi *Value, fn func(Value, int64) bool) {
	t.walk(t.root, lo, hi, fn)
}

func (t *btree) walk(n *btreeNode, lo, hi *Value, fn func(Value, int64) bool) bool {
	start := 0
	if lo != nil {
		start = n.search(btreeKey{val: *lo, row: -1 << 62})
	}
	for i := start; i <= len(n.keys); i++ {
		if !n.leaf() {
			if !t.walk(n.children[i], lo, hi, fn) {
				return false
			}
		}
		if i == len(n.keys) {
			break
		}
		k := n.keys[i]
		if hi != nil && k.val.Compare(*hi) > 0 {
			return false
		}
		if lo == nil || k.val.Compare(*lo) >= 0 {
			if !fn(k.val, k.row) {
				return false
			}
		}
	}
	return true
}

// len returns the number of entries.
func (t *btree) len() int { return t.size }

// checkInvariants verifies B-tree structural invariants; used by tests.
func (t *btree) checkInvariants() error {
	var prev *btreeKey
	var depthSeen = -1
	var check func(n *btreeNode, depth int, isRoot bool) error
	check = func(n *btreeNode, depth int, isRoot bool) error {
		if !isRoot && len(n.keys) < t.degree-1 {
			return fmt.Errorf("node underflow: %d keys at depth %d", len(n.keys), depth)
		}
		if len(n.keys) > t.maxKeys() {
			return fmt.Errorf("node overflow: %d keys", len(n.keys))
		}
		if n.leaf() {
			if depthSeen == -1 {
				depthSeen = depth
			} else if depth != depthSeen {
				return fmt.Errorf("leaves at different depths: %d vs %d", depth, depthSeen)
			}
			for i := range n.keys {
				if prev != nil && !prev.less(n.keys[i]) {
					return fmt.Errorf("keys out of order")
				}
				k := n.keys[i]
				prev = &k
			}
			return nil
		}
		if len(n.children) != len(n.keys)+1 {
			return fmt.Errorf("child count %d != keys+1 (%d)", len(n.children), len(n.keys)+1)
		}
		for i := 0; i <= len(n.keys); i++ {
			if err := check(n.children[i], depth+1, false); err != nil {
				return err
			}
			if i < len(n.keys) {
				if prev != nil && !prev.less(n.keys[i]) {
					return fmt.Errorf("separator out of order")
				}
				k := n.keys[i]
				prev = &k
			}
		}
		return nil
	}
	return check(t.root, 0, true)
}
