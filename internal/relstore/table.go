package relstore

import (
	"fmt"
	"sort"
	"sync"

	"modissense/internal/geo"
)

// Table is a typed relational table with optional B-tree and spatial
// indexes. All operations are safe for concurrent use.
type Table struct {
	mu      sync.RWMutex
	name    string
	schema  *Schema
	rows    map[int64]Row
	indexes map[string]*btree // column name → index
	spatial *spatialIndex
}

// spatialIndex indexes two Float columns (lat, lon) with an R-tree.
type spatialIndex struct {
	latCol, lonCol int
	tree           *geo.RTree
}

// NewTable creates an empty table with the given schema.
func NewTable(name string, schema *Schema) (*Table, error) {
	if name == "" {
		return nil, fmt.Errorf("relstore: empty table name")
	}
	if schema == nil {
		return nil, fmt.Errorf("relstore: nil schema")
	}
	return &Table{
		name:    name,
		schema:  schema,
		rows:    make(map[int64]Row),
		indexes: make(map[string]*btree),
	}, nil
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() *Schema { return t.schema }

// Len returns the row count.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// CreateIndex builds a B-tree index on the named column, indexing existing
// rows. Creating an index twice is an error.
func (t *Table) CreateIndex(column string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	ci := t.schema.ColIndex(column)
	if ci < 0 {
		return fmt.Errorf("relstore: no column %q in table %q", column, t.name)
	}
	if _, exists := t.indexes[column]; exists {
		return fmt.Errorf("relstore: index on %q already exists", column)
	}
	idx, err := newBTree(16)
	if err != nil {
		return err
	}
	for id, row := range t.rows {
		idx.insert(row[ci], id)
	}
	t.indexes[column] = idx
	return nil
}

// CreateSpatialIndex builds an R-tree over the given latitude/longitude
// Float columns. Only one spatial index per table is supported.
func (t *Table) CreateSpatialIndex(latColumn, lonColumn string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.spatial != nil {
		return fmt.Errorf("relstore: table %q already has a spatial index", t.name)
	}
	latCI := t.schema.ColIndex(latColumn)
	lonCI := t.schema.ColIndex(lonColumn)
	if latCI < 0 || lonCI < 0 {
		return fmt.Errorf("relstore: spatial columns %q/%q not found", latColumn, lonColumn)
	}
	if t.schema.Columns[latCI].Type != Float || t.schema.Columns[lonCI].Type != Float {
		return fmt.Errorf("relstore: spatial columns must be Float")
	}
	tree, err := geo.NewRTree(16)
	if err != nil {
		return err
	}
	for id, row := range t.rows {
		tree.InsertPoint(id, geo.Point{Lat: row[latCI].F, Lon: row[lonCI].F})
	}
	t.spatial = &spatialIndex{latCol: latCI, lonCol: lonCI, tree: tree}
	return nil
}

// Insert adds a row; the primary key (column 0) must be unique.
func (t *Table) Insert(r Row) error {
	if err := t.schema.validate(r); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	id := r[0].I
	if _, dup := t.rows[id]; dup {
		return fmt.Errorf("relstore: duplicate primary key %d in table %q", id, t.name)
	}
	stored := append(Row(nil), r...)
	t.rows[id] = stored
	for col, idx := range t.indexes {
		idx.insert(stored[t.schema.ColIndex(col)], id)
	}
	if t.spatial != nil {
		t.spatial.tree.InsertPoint(id, geo.Point{Lat: stored[t.spatial.latCol].F, Lon: stored[t.spatial.lonCol].F})
	}
	return nil
}

// Get returns a copy of the row with the given primary key.
func (t *Table) Get(id int64) (Row, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	r, ok := t.rows[id]
	if !ok {
		return nil, false
	}
	return append(Row(nil), r...), true
}

// Update replaces the row with the same primary key, maintaining indexes.
func (t *Table) Update(r Row) error {
	if err := t.schema.validate(r); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	id := r[0].I
	old, ok := t.rows[id]
	if !ok {
		return fmt.Errorf("relstore: update of missing primary key %d in table %q", id, t.name)
	}
	stored := append(Row(nil), r...)
	for col, idx := range t.indexes {
		ci := t.schema.ColIndex(col)
		if old[ci].Compare(stored[ci]) != 0 {
			idx.delete(old[ci], id)
			idx.insert(stored[ci], id)
		}
	}
	if t.spatial != nil {
		oldPt := geo.Point{Lat: old[t.spatial.latCol].F, Lon: old[t.spatial.lonCol].F}
		newPt := geo.Point{Lat: stored[t.spatial.latCol].F, Lon: stored[t.spatial.lonCol].F}
		if oldPt != newPt {
			if !t.spatial.tree.DeletePoint(id, oldPt) {
				return fmt.Errorf("relstore: spatial index out of sync for row %d", id)
			}
			t.spatial.tree.InsertPoint(id, newPt)
		}
	}
	t.rows[id] = stored
	return nil
}

// Delete removes the row with the given primary key, returning whether it
// existed. Every index — B-tree and spatial — is maintained.
func (t *Table) Delete(id int64) (bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	old, ok := t.rows[id]
	if !ok {
		return false, nil
	}
	if t.spatial != nil {
		pt := geo.Point{Lat: old[t.spatial.latCol].F, Lon: old[t.spatial.lonCol].F}
		if !t.spatial.tree.DeletePoint(id, pt) {
			return false, fmt.Errorf("relstore: spatial index out of sync for row %d", id)
		}
	}
	for col, idx := range t.indexes {
		idx.delete(old[t.schema.ColIndex(col)], id)
	}
	delete(t.rows, id)
	return true, nil
}

// scanAllIDs returns all primary keys in ascending order (deterministic
// full-scan order).
func (t *Table) scanAllIDs() []int64 {
	ids := make([]int64, 0, len(t.rows))
	for id := range t.rows {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
