package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"modissense/internal/textproc"
)

// Review-corpus generator. It stands in for the paper's Tripadvisor crawl:
// star-rated place reviews whose text carries sentiment through marker
// words, negations and noise. The label-noise schedule reproduces the
// Figure 4 phenomenon: past a clean threshold, additional training
// documents are increasingly mislabeled (crawled corpora get dirtier the
// deeper you scrape), so accuracy peaks and then degrades.

var positiveMarkers = []string{
	"amazing", "excellent", "wonderful", "delicious", "friendly", "lovely",
	"fantastic", "perfect", "great", "tasty", "charming", "cozy",
}

var negativeMarkers = []string{
	"terrible", "awful", "horrible", "rude", "dirty", "disgusting", "bland",
	"overpriced", "noisy", "slow", "cold", "stale",
}

var commonWords = []string{
	"food", "place", "service", "staff", "table", "menu", "dinner", "lunch",
	"waiter", "dish", "meal", "wine", "dessert", "view", "location", "price",
	"portion", "atmosphere", "music", "terrace", "kitchen", "order", "night",
	"evening", "visit", "experience", "time", "room", "beach", "drinks",
	"coffee", "breakfast", "plate", "salad", "fish", "meat", "cheese",
	"bread", "sauce", "chef", "bill", "reservation", "family", "friends",
}

// ReviewCorpusOptions control corpus size-vs-quality behaviour.
type ReviewCorpusOptions struct {
	// CleanDocs is the length of the clean prefix: documents up to this
	// index carry only BaseNoise label noise. It is the scaled analogue of
	// the paper's 500 k-document quality threshold.
	CleanDocs int
	// BaseNoise is the label-flip probability inside the clean prefix.
	BaseNoise float64
	// MaxNoise is the asymptotic label-flip probability deep in the corpus.
	MaxNoise float64
	// RampDocs is the index distance over which noise climbs from
	// BaseNoise to (approximately) MaxNoise after the clean prefix.
	RampDocs int
	// RareWordRate injects one-off misspelled tokens (what min-occurrence
	// pruning removes).
	RareWordRate float64
	// NegationRate writes markers in negated form ("not good"), the
	// pattern 2-gram features capture.
	NegationRate float64
}

// DefaultReviewOptions mirror the scaled paper setup (500× smaller than
// the 10M-document crawl, so the paper's 500k-document quality threshold
// lands at 1000 documents and the 10M top of Figure 4's x-axis at 20000).
func DefaultReviewOptions() ReviewCorpusOptions {
	return ReviewCorpusOptions{
		CleanDocs:    1000,
		BaseNoise:    0.02,
		MaxNoise:     0.44,
		RampDocs:     600,
		RareWordRate: 0.08,
		NegationRate: 0.20,
	}
}

// Validate checks option sanity.
func (o ReviewCorpusOptions) Validate() error {
	if o.CleanDocs < 0 || o.RampDocs <= 0 {
		return fmt.Errorf("workload: CleanDocs/RampDocs invalid: %d/%d", o.CleanDocs, o.RampDocs)
	}
	if o.BaseNoise < 0 || o.BaseNoise > 1 || o.MaxNoise < 0 || o.MaxNoise > 1 || o.MaxNoise < o.BaseNoise {
		return fmt.Errorf("workload: noise rates invalid: base=%g max=%g", o.BaseNoise, o.MaxNoise)
	}
	return nil
}

// noiseAt returns the label-flip probability for document index i.
func (o ReviewCorpusOptions) noiseAt(i int) float64 {
	if i < o.CleanDocs {
		return o.BaseNoise
	}
	frac := float64(i-o.CleanDocs) / float64(o.RampDocs)
	if frac > 1 {
		frac = 1
	}
	return o.BaseNoise + (o.MaxNoise-o.BaseNoise)*frac
}

// genReviewText writes one review with the given true sentiment.
func genReviewText(rng *rand.Rand, positive bool, opts ReviewCorpusOptions, serial int) string {
	length := 8 + rng.Intn(14)
	markers := positiveMarkers
	opposite := negativeMarkers
	if !positive {
		markers, opposite = negativeMarkers, positiveMarkers
	}
	nMarkers := 2 + rng.Intn(3)
	var words []string
	for len(words) < length {
		words = append(words, commonWords[rng.Intn(len(commonWords))])
	}
	// Insert marker units at random positions. A negated unit ("not
	// terrible") stays adjacent so 2-gram features can capture it.
	insert := func(unit ...string) {
		pos := rng.Intn(len(words) + 1)
		words = append(words[:pos], append(append([]string(nil), unit...), words[pos:]...)...)
	}
	for m := 0; m < nMarkers; m++ {
		if rng.Float64() < opts.NegationRate {
			// Negated opposite marker: "not terrible" in a positive review.
			insert("not", opposite[rng.Intn(len(opposite))])
		} else {
			insert(markers[rng.Intn(len(markers))])
		}
	}
	if rng.Float64() < opts.RareWordRate {
		// A unique typo token that only this document contains.
		insert(fmt.Sprintf("%sx%dq", markers[rng.Intn(len(markers))][:3], serial))
	}
	return strings.Join(words, " ")
}

// GenReviews generates the training corpus: n documents whose label noise
// follows the options' schedule over the document index. Taking the first
// k documents as a training set therefore reproduces the paper's
// size-vs-quality trade-off.
func GenReviews(rng *rand.Rand, n int, opts ReviewCorpusOptions) ([]textproc.Document, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	docs := make([]textproc.Document, n)
	for i := range docs {
		positive := rng.Intn(2) == 1
		text := genReviewText(rng, positive, opts, i)
		label := textproc.Negative
		if positive {
			label = textproc.Positive
		}
		if rng.Float64() < opts.noiseAt(i) {
			label = 1 - label // flipped annotation
		}
		docs[i] = textproc.Document{Text: text, Label: label}
	}
	return docs, nil
}

// GenTestReviews generates a clean, correctly labeled held-out set for
// evaluation ("accuracy towards unseen data").
func GenTestReviews(rng *rand.Rand, n int) []textproc.Document {
	opts := DefaultReviewOptions()
	docs := make([]textproc.Document, n)
	for i := range docs {
		positive := rng.Intn(2) == 1
		label := textproc.Negative
		if positive {
			label = textproc.Positive
		}
		docs[i] = textproc.Document{Text: genReviewText(rng, positive, opts, -i-1), Label: label}
	}
	return docs
}

// GenComment produces one free-text check-in comment with the given
// sentiment, reusing the review text model; the data-collection pipeline
// classifies these at ingest.
func GenComment(rng *rand.Rand, positive bool) string {
	return genReviewText(rng, positive, DefaultReviewOptions(), rng.Intn(1<<30))
}
