package workload

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"modissense/internal/geo"
	"modissense/internal/model"
	"modissense/internal/textproc"
)

func TestGenPOIs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pois := GenPOIs(rng, 2000)
	if len(pois) != 2000 {
		t.Fatalf("got %d POIs", len(pois))
	}
	bounds := GreeceBounds()
	ids := map[int64]bool{}
	athens := 0
	for _, p := range pois {
		if !bounds.Contains(p.Point()) {
			t.Fatalf("POI %d outside Greece bounds: %v", p.ID, p.Point())
		}
		if ids[p.ID] {
			t.Fatalf("duplicate POI id %d", p.ID)
		}
		ids[p.ID] = true
		if len(p.Keywords) == 0 || p.Name == "" {
			t.Fatalf("POI %d missing metadata", p.ID)
		}
		if geo.Haversine(p.Point(), geo.Point{Lat: 37.9838, Lon: 23.7275}) < 30000 {
			athens++
		}
	}
	// The city mixture must concentrate a solid share near Athens.
	if athens < 400 {
		t.Errorf("only %d/2000 POIs near Athens; city mixture broken", athens)
	}
}

func TestGenPOIsDeterministic(t *testing.T) {
	a := GenPOIs(rand.New(rand.NewSource(7)), 100)
	b := GenPOIs(rand.New(rand.NewSource(7)), 100)
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Lat != b[i].Lat || a[i].Lon != b[i].Lon || a[i].Name != b[i].Name {
			t.Fatalf("generation not deterministic at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestGenUsers(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	users := GenUsers(rng, 1000)
	if len(users) != 1000 {
		t.Fatalf("got %d users", len(users))
	}
	multi := 0
	for _, u := range users {
		if len(u.Networks) == 0 {
			t.Fatalf("user %d has no networks", u.ID)
		}
		if len(u.Networks) > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Error("no user linked a second network")
	}
}

func TestVisitCountDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 20000
	var sum, sumSq float64
	within := 0
	for i := 0; i < n; i++ {
		c := float64(VisitCount(rng, PaperVisitMean, PaperVisitSigma))
		sum += c
		sumSq += c * c
		if c >= 140 && c <= 200 {
			within++
		}
	}
	mean := sum / float64(n)
	std := math.Sqrt(sumSq/float64(n) - mean*mean)
	if math.Abs(mean-PaperVisitMean) > 1 {
		t.Errorf("mean = %.2f, want ≈170", mean)
	}
	if math.Abs(std-PaperVisitSigma) > 1 {
		t.Errorf("std = %.2f, want ≈10", std)
	}
	// The paper's footnote: "the vast majority of the users has performed
	// between 140 and 200 visits" — that's ±3σ.
	if frac := float64(within) / float64(n); frac < 0.99 {
		t.Errorf("only %.3f of counts within [140,200]", frac)
	}
}

func TestGenVisitsForUser(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pois := GenPOIs(rng, 200)
	start := time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)
	end := time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC)
	visits := GenVisitsForUser(rng, 42, pois, start, end, PaperVisitMean, PaperVisitSigma)
	if len(visits) < 140 || len(visits) > 200 {
		t.Errorf("visit count %d outside expected range", len(visits))
	}
	gradeBuckets := map[bool]int{}
	for _, v := range visits {
		if v.UserID != 42 {
			t.Fatal("wrong user id")
		}
		if v.Grade < 1 || v.Grade > 5 {
			t.Fatalf("grade %g out of [1,5]", v.Grade)
		}
		if v.Time < model.Millis(start) || v.Time > model.Millis(end) {
			t.Fatalf("time %d out of range", v.Time)
		}
		if v.POI.ID == 0 || v.POI.Name == "" {
			t.Fatal("visit must embed full POI info (replicated schema)")
		}
		gradeBuckets[v.Grade >= 4]++
	}
	// The taste profile must produce both liked and disliked visits.
	if gradeBuckets[true] == 0 || gradeBuckets[false] == 0 {
		t.Errorf("degenerate taste profile: %v", gradeBuckets)
	}
}

func TestGenFriendList(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	friends := GenFriendList(rng, 17, 1000, 200)
	if len(friends) != 200 {
		t.Fatalf("got %d friends", len(friends))
	}
	seen := map[int64]bool{}
	for _, f := range friends {
		if f == 17 {
			t.Fatal("friend list contains self")
		}
		if f < 1 || f > 1000 {
			t.Fatalf("friend id %d out of population", f)
		}
		if seen[f] {
			t.Fatalf("duplicate friend %d", f)
		}
		seen[f] = true
	}
	// Requesting more friends than the population caps out.
	all := GenFriendList(rng, 1, 10, 50)
	if len(all) != 9 {
		t.Errorf("capped friend list = %d, want 9", len(all))
	}
}

func TestGenGPSDayProducesDetectableStays(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pois := GenPOIs(rng, 50)
	day := time.Date(2015, 5, 30, 0, 0, 0, 0, time.UTC)
	stops := []model.POI{pois[0], pois[1], pois[2]}
	fixes := GenGPSDay(rng, 9, day, stops, 5*time.Minute, 40*time.Minute)
	if len(fixes) == 0 {
		t.Fatal("no fixes generated")
	}
	for i := 1; i < len(fixes); i++ {
		if fixes[i].Time < fixes[i-1].Time {
			t.Fatal("fixes not time-ordered")
		}
	}
	// Around each stop there must be a dense run of ≥ 8 samples.
	for _, stop := range stops {
		near := 0
		for _, f := range fixes {
			if geo.Haversine(f.Point(), stop.Point()) < 100 {
				near++
			}
		}
		if near < 8 {
			t.Errorf("stop %s has only %d nearby fixes", stop.Name, near)
		}
	}
}

func TestGenGathering(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	center := geo.Point{Lat: 37.97, Lon: 23.73}
	start := time.Date(2015, 5, 30, 20, 0, 0, 0, time.UTC)
	fixes := GenGathering(rng, center, 300, 50, start, start.Add(3*time.Hour))
	if len(fixes) != 300 {
		t.Fatalf("got %d fixes", len(fixes))
	}
	within200 := 0
	for _, f := range fixes {
		if geo.Haversine(f.Point(), center) < 200 {
			within200++
		}
	}
	if within200 < 280 {
		t.Errorf("gathering too diffuse: %d/300 within 200 m", within200)
	}
}

func TestReviewCorpusOptionsValidate(t *testing.T) {
	bad := DefaultReviewOptions()
	bad.MaxNoise = 0.01 // below base
	if err := bad.Validate(); err == nil {
		t.Error("max < base must fail")
	}
	bad = DefaultReviewOptions()
	bad.RampDocs = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero ramp must fail")
	}
	if _, err := GenReviews(rand.New(rand.NewSource(1)), 10, bad); err == nil {
		t.Error("GenReviews must validate options")
	}
}

func TestNoiseSchedule(t *testing.T) {
	o := DefaultReviewOptions()
	if o.noiseAt(0) != o.BaseNoise || o.noiseAt(o.CleanDocs-1) != o.BaseNoise {
		t.Error("clean prefix must have base noise")
	}
	mid := o.noiseAt(o.CleanDocs + o.RampDocs/2)
	if mid <= o.BaseNoise || mid >= o.MaxNoise {
		t.Errorf("mid-ramp noise %g out of (base,max)", mid)
	}
	deep := o.noiseAt(o.CleanDocs + 10*o.RampDocs)
	if deep != o.MaxNoise {
		t.Errorf("deep noise %g, want max %g", deep, o.MaxNoise)
	}
}

func TestGenReviewsClassifiable(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	docs, err := GenReviews(rng, 500, DefaultReviewOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 500 {
		t.Fatalf("got %d docs", len(docs))
	}
	nb, err := textproc.TrainNaiveBayes(docs, textproc.OptimizedOptions())
	if err != nil {
		t.Fatal(err)
	}
	test := GenTestReviews(rand.New(rand.NewSource(9)), 500)
	acc := textproc.Evaluate(nb, test).Accuracy()
	if acc < 0.85 {
		t.Errorf("clean-corpus accuracy %.3f too low; corpus not learnable", acc)
	}
}

// TestFigure4ShapeInMiniature is the workload-level guarantee behind the
// Figure 4 reproduction: accuracy at the quality threshold (1000 docs, the
// 500× scaled analogue of the paper's 500 k) beats accuracy with far more
// (noisy) training data, and the optimized pipeline beats the baseline at
// both sizes.
func TestFigure4ShapeInMiniature(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	opts := DefaultReviewOptions()
	corpus, err := GenReviews(rng, 8000, opts)
	if err != nil {
		t.Fatal(err)
	}
	test := GenTestReviews(rand.New(rand.NewSource(11)), 1000)
	accAt := func(n int, cfg textproc.PipelineOptions) float64 {
		nb, err := textproc.TrainNaiveBayes(corpus[:n], cfg)
		if err != nil {
			t.Fatal(err)
		}
		return textproc.Evaluate(nb, test).Accuracy()
	}
	peak := accAt(opts.CleanDocs, textproc.OptimizedOptions())
	deep := accAt(8000, textproc.OptimizedOptions())
	if peak <= deep {
		t.Errorf("accuracy must degrade past the threshold: %d docs → %.3f, 8000 docs → %.3f", opts.CleanDocs, peak, deep)
	}
	if peak < 0.9 {
		t.Errorf("peak accuracy %.3f too low", peak)
	}
	if base := accAt(opts.CleanDocs, textproc.BaselineOptions()); base >= peak {
		t.Errorf("optimized (%.3f) must beat baseline (%.3f) at the threshold", peak, base)
	}
	if base := accAt(8000, textproc.BaselineOptions()); base >= deep {
		t.Errorf("optimized (%.3f) must beat baseline (%.3f) deep in the corpus", deep, base)
	}
}
