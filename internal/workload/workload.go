// Package workload generates the synthetic datasets of the paper's
// evaluation: a POI catalog shaped like the OpenStreetMap Greece extract
// (8 500 POIs), 150 000 social-network users whose visit counts follow
// N(170, 10²), GPS traces with planted gatherings, and a labeled review
// corpus standing in for the Tripadvisor crawl.
//
// Every generator takes an explicit seed so whole experiments are
// reproducible bit-for-bit.
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"modissense/internal/geo"
	"modissense/internal/model"
)

// Paper-scale constants (documented in DESIGN.md §3).
const (
	// PaperPOICount is the OpenStreetMap Greece POI count used in §3.1.
	PaperPOICount = 8500
	// PaperUserCount is the emulated social-network population.
	PaperUserCount = 150000
	// PaperVisitMean and PaperVisitSigma parameterize the per-user visit
	// count distribution N(170, 10²).
	PaperVisitMean  = 170.0
	PaperVisitSigma = 10.0
)

// GreeceBounds is the bounding box the POI generator fills.
func GreeceBounds() geo.Rect {
	return geo.Rect{MinLat: 34.8, MinLon: 19.3, MaxLat: 41.8, MaxLon: 28.3}
}

// city is one population center of the spatial mixture model.
type city struct {
	name   string
	center geo.Point
	sigma  float64 // POI scatter in meters
	weight float64
}

var greekCities = []city{
	{"athens", geo.Point{Lat: 37.9838, Lon: 23.7275}, 9000, 0.35},
	{"thessaloniki", geo.Point{Lat: 40.6401, Lon: 22.9444}, 7000, 0.18},
	{"patras", geo.Point{Lat: 38.2466, Lon: 21.7346}, 5000, 0.08},
	{"heraklion", geo.Point{Lat: 35.3387, Lon: 25.1442}, 5000, 0.07},
	{"larissa", geo.Point{Lat: 39.6390, Lon: 22.4191}, 4000, 0.05},
	{"volos", geo.Point{Lat: 39.3622, Lon: 22.9420}, 4000, 0.05},
	{"ioannina", geo.Point{Lat: 39.6650, Lon: 20.8537}, 4000, 0.04},
	{"chania", geo.Point{Lat: 35.5138, Lon: 24.0180}, 4000, 0.04},
	{"rhodes", geo.Point{Lat: 36.4349, Lon: 28.2176}, 4000, 0.04},
	{"kalamata", geo.Point{Lat: 37.0389, Lon: 22.1142}, 3500, 0.03},
}

// poiCategories drive names and keyword sets.
var poiCategories = []struct {
	kind     string
	keywords []string
}{
	{"taverna", []string{"restaurant", "greek", "food"}},
	{"restaurant", []string{"restaurant", "food", "dinner"}},
	{"fastfood", []string{"restaurant", "fastfood", "food"}},
	{"cafe", []string{"cafe", "coffee", "breakfast"}},
	{"bar", []string{"bar", "drinks", "nightlife"}},
	{"museum", []string{"museum", "history", "culture"}},
	{"beach", []string{"beach", "swimming", "summer"}},
	{"hotel", []string{"hotel", "accommodation"}},
	{"club", []string{"club", "music", "nightlife"}},
	{"gallery", []string{"gallery", "art", "culture"}},
	{"bakery", []string{"bakery", "food", "breakfast"}},
	{"theater", []string{"theater", "culture", "shows"}},
}

// GenPOIs generates n POIs with the city-mixture spatial model. 15% of
// POIs scatter uniformly over the countryside, the rest cluster around
// cities, mimicking the density profile of the OSM extract.
func GenPOIs(rng *rand.Rand, n int) []model.POI {
	bounds := GreeceBounds()
	pois := make([]model.POI, n)
	for i := range pois {
		var pt geo.Point
		if rng.Float64() < 0.15 {
			pt = geo.Point{
				Lat: bounds.MinLat + rng.Float64()*(bounds.MaxLat-bounds.MinLat),
				Lon: bounds.MinLon + rng.Float64()*(bounds.MaxLon-bounds.MinLon),
			}
		} else {
			c := pickCity(rng)
			pt = geo.Point{
				Lat: c.center.Lat + geo.MetersToLatDegrees(rng.NormFloat64()*c.sigma),
				Lon: c.center.Lon + geo.MetersToLonDegrees(rng.NormFloat64()*c.sigma, c.center.Lat),
			}
			pt = clampInto(pt, bounds)
		}
		cat := poiCategories[rng.Intn(len(poiCategories))]
		pois[i] = model.POI{
			ID:       int64(i + 1),
			Name:     fmt.Sprintf("%s-%04d", cat.kind, i+1),
			Lat:      pt.Lat,
			Lon:      pt.Lon,
			Keywords: append([]string(nil), cat.keywords...),
		}
	}
	return pois
}

func pickCity(rng *rand.Rand) city {
	r := rng.Float64() * totalCityWeight
	for _, c := range greekCities {
		if r < c.weight {
			return c
		}
		r -= c.weight
	}
	return greekCities[0]
}

var totalCityWeight = func() float64 {
	var t float64
	for _, c := range greekCities {
		t += c.weight
	}
	return t
}()

func clampInto(p geo.Point, r geo.Rect) geo.Point {
	if p.Lat < r.MinLat {
		p.Lat = r.MinLat
	}
	if p.Lat > r.MaxLat {
		p.Lat = r.MaxLat
	}
	if p.Lon < r.MinLon {
		p.Lon = r.MinLon
	}
	if p.Lon > r.MaxLon {
		p.Lon = r.MaxLon
	}
	return p
}

// GenUsers generates the social-network population with linked networks.
func GenUsers(rng *rand.Rand, n int) []model.User {
	networks := []string{"facebook", "twitter", "foursquare"}
	users := make([]model.User, n)
	for i := range users {
		linked := []string{networks[rng.Intn(3)]}
		if rng.Float64() < 0.4 {
			second := networks[rng.Intn(3)]
			if second != linked[0] {
				linked = append(linked, second)
			}
		}
		users[i] = model.User{
			ID:       int64(i + 1),
			Name:     fmt.Sprintf("user-%06d", i+1),
			Networks: linked,
		}
	}
	return users
}

// VisitCount draws one per-user visit count from N(mean, sigma²),
// truncated at 1.
func VisitCount(rng *rand.Rand, mean, sigma float64) int {
	n := int(mean + sigma*rng.NormFloat64() + 0.5)
	if n < 1 {
		n = 1
	}
	return n
}

// GenVisitsForUser generates one user's visit history over the time span.
// Users have a home city bias: most visits hit POIs near one of their two
// favorite cities, with a preference tilt (grade distribution) that gives
// each user a consistent taste profile — the property the demo's
// personalized-search scenario depends on.
func GenVisitsForUser(rng *rand.Rand, userID int64, pois []model.POI, start, end time.Time, mean, sigma float64) []model.Visit {
	count := VisitCount(rng, mean, sigma)
	visits := make([]model.Visit, count)
	span := end.Sub(start)
	// Taste profile: the user likes ~60% of categories; visits to liked
	// categories grade high, others low.
	likes := map[string]bool{}
	for _, c := range poiCategories {
		if rng.Float64() < 0.6 {
			likes[c.keywords[0]] = true
		}
	}
	for i := range visits {
		poi := pois[rng.Intn(len(pois))]
		liked := len(poi.Keywords) > 0 && likes[poi.Keywords[0]]
		var grade float64
		if liked {
			grade = 4 + rng.Float64() // 4..5
		} else {
			grade = 1 + rng.Float64()*2 // 1..3
		}
		visits[i] = model.Visit{
			UserID:  userID,
			Time:    model.Millis(start.Add(time.Duration(rng.Int63n(int64(span))))),
			Grade:   grade,
			Network: []string{"facebook", "twitter", "foursquare"}[rng.Intn(3)],
			POI:     poi,
		}
	}
	return visits
}

// GenFriendList picks f distinct friend ids uniformly from the population
// (excluding self), matching §3.1 ("friends for each query are picked
// randomly in a uniform manner").
func GenFriendList(rng *rand.Rand, self int64, population, f int) []int64 {
	if f > population-1 {
		f = population - 1
	}
	seen := make(map[int64]bool, f)
	out := make([]int64, 0, f)
	for len(out) < f {
		id := int64(rng.Intn(population) + 1)
		if id == self || seen[id] {
			continue
		}
		seen[id] = true
		out = append(out, id)
	}
	return out
}

// GenGPSDay generates one user's GPS trace for a day: dwells at `stops`
// POIs connected by movement segments, sampled every sampleEvery. The
// returned fixes are time-ordered.
func GenGPSDay(rng *rand.Rand, userID int64, day time.Time, stops []model.POI, sampleEvery, dwell time.Duration) []model.GPSFix {
	var fixes []model.GPSFix
	at := time.Date(day.Year(), day.Month(), day.Day(), 8, 0, 0, 0, time.UTC)
	emit := func(p geo.Point) {
		jLat := geo.MetersToLatDegrees(rng.NormFloat64() * 8)
		jLon := geo.MetersToLonDegrees(rng.NormFloat64()*8, p.Lat)
		fixes = append(fixes, model.GPSFix{
			UserID: userID,
			Lat:    p.Lat + jLat,
			Lon:    p.Lon + jLon,
			Time:   model.Millis(at),
		})
		at = at.Add(sampleEvery)
	}
	for si, stop := range stops {
		// Dwell at the stop.
		samples := int(dwell / sampleEvery)
		if samples < 2 {
			samples = 2
		}
		for s := 0; s < samples; s++ {
			emit(stop.Point())
		}
		// Travel toward the next stop with sparse samples.
		if si+1 < len(stops) {
			next := stops[si+1]
			for _, f := range []float64{0.25, 0.5, 0.75} {
				emit(geo.Point{
					Lat: stop.Lat + (next.Lat-stop.Lat)*f,
					Lon: stop.Lon + (next.Lon-stop.Lon)*f,
				})
			}
		}
	}
	return fixes
}

// GenGathering plants a dense crowd event: n fixes from distinct users
// within sigma meters of the center during the time window.
func GenGathering(rng *rand.Rand, center geo.Point, n int, sigmaMeters float64, start, end time.Time) []model.GPSFix {
	fixes := make([]model.GPSFix, n)
	span := end.Sub(start)
	for i := range fixes {
		fixes[i] = model.GPSFix{
			UserID: int64(i + 1),
			Lat:    center.Lat + geo.MetersToLatDegrees(rng.NormFloat64()*sigmaMeters),
			Lon:    center.Lon + geo.MetersToLonDegrees(rng.NormFloat64()*sigmaMeters, center.Lat),
			Time:   model.Millis(start.Add(time.Duration(rng.Int63n(int64(span))))),
		}
	}
	return fixes
}
