// Package faultinject is the platform's deterministic fault-injection
// harness: seeded, wall-clock-free decisions about which region read
// attempts crash, stall, slow down or error out, so fault-tolerance tests
// and benchmarks replay the exact same failure schedule on every run.
//
// The injector sits behind the interception points of internal/kvstore:
// every per-replica read attempt, primary-write admission and per-replica
// WAL shipment asks Decide whether (and how) it should misbehave (rules
// select the class with the op= option, default read). Decisions are pure
// functions of the schedule seed, the target (kind, node, region, replica)
// and that target's own operation counter — goroutine interleavings across
// targets cannot change any target's fault sequence, which is what keeps
// the fault-matrix tests and the `-faults` bench runs reproducible.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"modissense/internal/obs"
)

// Kind enumerates the injectable fault behaviours.
type Kind int

// The fault kinds the harness can inject at a read attempt.
const (
	// Crash fails the attempt immediately with ErrInjectedCrash — the
	// region server died mid-RPC.
	Crash Kind = iota
	// Stall blocks the attempt for Rule.Duration (or until the attempt's
	// context is cancelled) before letting it run — a GC pause, an
	// overloaded server, a network partition that eventually heals.
	Stall
	// SlowScan stretches the attempt's service time by Rule.Factor — the
	// region is alive but degraded (cold cache, noisy neighbour).
	SlowScan
	// ScanError lets the attempt start but fails it with ErrInjectedScan —
	// a corrupt block or a mid-scan lease timeout.
	ScanError
)

// String names the fault kind as used by the schedule DSL.
func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Stall:
		return "stall"
	case SlowScan:
		return "slow"
	case ScanError:
		return "scanerr"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// OpKind classifies which operation class an injection targets. The zero
// value is OpRead, so every pre-existing rule, schedule string and recorded
// benchmark run keeps its exact meaning (read-only interception).
type OpKind int

// The operation classes the harness can intercept.
const (
	// OpRead targets per-replica coprocessor read attempts (the original
	// interception point in the kvstore read path).
	OpRead OpKind = iota
	// OpPut targets primary-write admission: Table.Put / PutBatch / Delete
	// ask Decide once per region run before applying.
	OpPut
	// OpShip targets WAL shipment to one replica: a faulted ship leaves
	// that replica lagging instead of failing the write.
	OpShip
)

// String names the op kind as used by the schedule DSL's op= option.
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpPut:
		return "put"
	case OpShip:
		return "ship"
	default:
		return fmt.Sprintf("op(%d)", int(k))
	}
}

// Injected-fault sentinels; errors.Is distinguishes injected failures from
// organic ones in tests and retry accounting.
var (
	// ErrInjectedCrash is returned by attempts a Crash rule killed.
	ErrInjectedCrash = errors.New("faultinject: injected crash")
	// ErrInjectedScan is returned by attempts a ScanError rule failed.
	ErrInjectedScan = errors.New("faultinject: injected scan error")
)

// Any matches every node, region or replica in a Rule selector field.
const Any = -1

// Rule is one line of a fault schedule: which targets it selects, what
// fault it injects and how often.
type Rule struct {
	// Fault is the behaviour to inject.
	Fault Kind
	// Op selects the operation class the rule intercepts. The zero value
	// is OpRead, keeping every pre-selector schedule byte-compatible; a
	// rule never matches an op of a different class.
	Op OpKind
	// Node selects the simulated node hosting the attempt (Any = all).
	Node int
	// Region selects the region id (Any = all).
	Region int
	// Replica selects the replica index (0 = primary, Any = all).
	Replica int
	// Prob is the per-attempt injection probability; values <= 0 or >= 1
	// mean "always". The roll is a pure hash of (seed, rule, target, op
	// counter) — no shared RNG state, no wall clock.
	Prob float64
	// Duration is how long Stall blocks the attempt.
	Duration time.Duration
	// Factor is SlowScan's service-time multiplier (values <= 1 are
	// treated as no slowdown).
	Factor float64
	// FromOp/ToOp bound the target-local operation window the rule is
	// active in: ops with FromOp <= seq < ToOp match (ToOp = 0 means
	// unbounded), so schedules can express "the third through tenth reads
	// of region 2 fail".
	FromOp uint64
	ToOp   uint64
}

// matches reports whether the rule selects the target.
func (r *Rule) matches(op Op, seq uint64) bool {
	if r.Op != op.Kind {
		return false
	}
	if r.Node != Any && r.Node != op.Node {
		return false
	}
	if r.Region != Any && r.Region != op.Region {
		return false
	}
	if r.Replica != Any && r.Replica != op.Replica {
		return false
	}
	if seq < r.FromOp {
		return false
	}
	if r.ToOp > 0 && seq >= r.ToOp {
		return false
	}
	return true
}

// Schedule is a complete seeded fault plan.
type Schedule struct {
	// Seed drives every probability roll; two injectors with the same
	// schedule make identical decisions.
	Seed int64
	// Rules are evaluated in order for every attempt; all matching rules
	// that pass their roll contribute to the decision (first error wins,
	// stalls and slow factors take the maximum).
	Rules []Rule
}

// Op identifies one intercepted operation for Decide: its class (read
// attempt, primary write, or WAL shipment), which simulated node executes
// it, which region it touches and which replica index is involved. Each
// distinct Op keeps its own deterministic operation counter.
type Op struct {
	// Kind is the operation class (zero = OpRead).
	Kind OpKind
	// Node is the simulated node executing the attempt.
	Node int
	// Region is the region id being read.
	Region int
	// Replica is the replica index serving the read (0 = primary).
	Replica int
}

// Decision is what the interception point must do to the attempt: fail it
// (Err), delay it (Stall) and/or stretch its service time (SlowFactor > 1).
// The zero Decision means "behave normally".
type Decision struct {
	// Err, when non-nil, fails the attempt (ErrInjectedCrash fails before
	// any work, ErrInjectedScan after it).
	Err error
	// Stall delays the attempt's start by this long (bounded by ctx).
	Stall time.Duration
	// SlowFactor stretches the attempt's measured service time when > 1.
	SlowFactor float64
}

// Injector makes deterministic fault decisions for a schedule. Safe for
// concurrent use; a nil *Injector is valid and never injects.
type Injector struct {
	sched Schedule

	mu  sync.Mutex
	ops map[Op]uint64 // per-target op counters
}

// New builds an injector for the schedule.
func New(sched Schedule) *Injector {
	return &Injector{sched: sched, ops: make(map[Op]uint64)}
}

// Schedule returns a copy of the injector's schedule.
func (i *Injector) Schedule() Schedule {
	if i == nil {
		return Schedule{}
	}
	out := i.sched
	out.Rules = append([]Rule(nil), i.sched.Rules...)
	return out
}

// nextSeq returns and advances the target's operation counter.
func (i *Injector) nextSeq(op Op) uint64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	seq := i.ops[op]
	i.ops[op] = seq + 1
	return seq
}

// Decide returns what should happen to the attempt. Nil-safe: a nil
// injector returns the zero Decision.
func (i *Injector) Decide(op Op) Decision {
	if i == nil || len(i.sched.Rules) == 0 {
		return Decision{}
	}
	seq := i.nextSeq(op)
	var d Decision
	for ri := range i.sched.Rules {
		r := &i.sched.Rules[ri]
		if !r.matches(op, seq) {
			continue
		}
		if !i.roll(ri, op, seq, r.Prob) {
			continue
		}
		switch r.Fault {
		case Crash:
			if d.Err == nil {
				d.Err = ErrInjectedCrash
			}
			mInjectedCrash.Inc()
		case ScanError:
			if d.Err == nil {
				d.Err = ErrInjectedScan
			}
			mInjectedScanErr.Inc()
		case Stall:
			if r.Duration > d.Stall {
				d.Stall = r.Duration
			}
			mInjectedStall.Inc()
		case SlowScan:
			if r.Factor > d.SlowFactor {
				d.SlowFactor = r.Factor
			}
			mInjectedSlow.Inc()
		}
	}
	return d
}

// roll is the deterministic probability check: a splitmix64 hash of the
// seed, the rule index, the target identity and the target's op counter,
// mapped onto [0, 1).
func (i *Injector) roll(rule int, op Op, seq uint64, prob float64) bool {
	if prob <= 0 || prob >= 1 {
		return true
	}
	x := uint64(i.sched.Seed)
	x = splitmix64(x ^ uint64(rule)*0x9e3779b97f4a7c15)
	x = splitmix64(x ^ uint64(int64(op.Node))*0xbf58476d1ce4e5b9)
	x = splitmix64(x ^ uint64(int64(op.Region))*0x94d049bb133111eb)
	x = splitmix64(x ^ uint64(int64(op.Replica))*0xd6e8feb86659fd93)
	x = splitmix64(x ^ seq)
	return float64(x>>11)/float64(1<<53) < prob
}

// splitmix64 is the SplitMix64 finalizer: a cheap, well-mixed 64-bit hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Sleep blocks for d or until ctx is done, returning ctx.Err() when the
// context fired first — the interception point uses it to apply Stall
// decisions without ignoring cancellation.
func Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// ParseSchedule parses the `-faults` DSL into a schedule. Rules are
// semicolon-separated; each rule is `kind:key=value,key=value...` with kind
// one of crash|stall|slow|scanerr and keys node, region, replica (target
// selectors, default any), op (operation class: read|put|ship, default
// read — so every pre-selector schedule keeps its meaning), prob (default
// 1), dur (stall duration, Go syntax), factor (slow multiplier), from/to
// (target-local op window).
//
// Example: "stall:node=1,dur=400ms;crash:op=put,node=2;slow:region=3,factor=5,prob=0.5".
func ParseSchedule(spec string, seed int64) (Schedule, error) {
	sched := Schedule{Seed: seed}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kindStr, argStr, _ := strings.Cut(part, ":")
		rule := Rule{Node: Any, Region: Any, Replica: Any}
		switch strings.TrimSpace(kindStr) {
		case "crash":
			rule.Fault = Crash
		case "stall":
			rule.Fault = Stall
		case "slow":
			rule.Fault = SlowScan
		case "scanerr":
			rule.Fault = ScanError
		default:
			return Schedule{}, fmt.Errorf("faultinject: unknown fault kind %q in %q", kindStr, part)
		}
		if argStr != "" {
			for _, kv := range strings.Split(argStr, ",") {
				key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
				if !ok {
					return Schedule{}, fmt.Errorf("faultinject: malformed option %q in %q", kv, part)
				}
				if err := rule.setOption(strings.TrimSpace(key), strings.TrimSpace(val)); err != nil {
					return Schedule{}, fmt.Errorf("faultinject: %q: %w", part, err)
				}
			}
		}
		if rule.Fault == Stall && rule.Duration <= 0 {
			return Schedule{}, fmt.Errorf("faultinject: stall rule %q needs dur=<duration>", part)
		}
		if rule.Fault == SlowScan && rule.Factor <= 1 {
			return Schedule{}, fmt.Errorf("faultinject: slow rule %q needs factor>1", part)
		}
		sched.Rules = append(sched.Rules, rule)
	}
	return sched, nil
}

// setOption applies one key=value DSL option to the rule.
func (r *Rule) setOption(key, val string) error {
	switch key {
	case "node", "region", "replica":
		n, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("invalid %s %q", key, val)
		}
		switch key {
		case "node":
			r.Node = n
		case "region":
			r.Region = n
		default:
			r.Replica = n
		}
	case "op":
		switch val {
		case "read":
			r.Op = OpRead
		case "put":
			r.Op = OpPut
		case "ship":
			r.Op = OpShip
		default:
			return fmt.Errorf("invalid op %q (want read|put|ship)", val)
		}
	case "prob":
		p, err := strconv.ParseFloat(val, 64)
		if err != nil || p < 0 || p > 1 {
			return fmt.Errorf("invalid prob %q", val)
		}
		r.Prob = p
	case "dur":
		d, err := time.ParseDuration(val)
		if err != nil || d < 0 {
			return fmt.Errorf("invalid dur %q", val)
		}
		r.Duration = d
	case "factor":
		f, err := strconv.ParseFloat(val, 64)
		if err != nil || f <= 0 {
			return fmt.Errorf("invalid factor %q", val)
		}
		r.Factor = f
	case "from", "to":
		n, err := strconv.ParseUint(val, 10, 64)
		if err != nil {
			return fmt.Errorf("invalid %s %q", key, val)
		}
		if key == "from" {
			r.FromOp = n
		} else {
			r.ToOp = n
		}
	default:
		return fmt.Errorf("unknown option %q", key)
	}
	return nil
}

// Injection counters by fault kind; the label set is the fixed Kind enum.
var (
	mInjectedCrash = obs.Default().Counter("faultinject_injected_total",
		"Fault decisions injected, by fault kind.", obs.L("fault", "crash"))
	mInjectedStall = obs.Default().Counter("faultinject_injected_total",
		"Fault decisions injected, by fault kind.", obs.L("fault", "stall"))
	mInjectedSlow = obs.Default().Counter("faultinject_injected_total",
		"Fault decisions injected, by fault kind.", obs.L("fault", "slow"))
	mInjectedScanErr = obs.Default().Counter("faultinject_injected_total",
		"Fault decisions injected, by fault kind.", obs.L("fault", "scanerr"))
)
