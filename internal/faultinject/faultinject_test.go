package faultinject

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestDecideMatchesSelectors(t *testing.T) {
	inj := New(Schedule{Seed: 7, Rules: []Rule{
		{Fault: Crash, Node: 1, Region: Any, Replica: Any},
	}})
	if d := inj.Decide(Op{Node: 0, Region: 3, Replica: 0}); d.Err != nil {
		t.Fatalf("node 0 should be healthy, got %v", d.Err)
	}
	d := inj.Decide(Op{Node: 1, Region: 3, Replica: 0})
	if !errors.Is(d.Err, ErrInjectedCrash) {
		t.Fatalf("node 1 should crash, got %v", d.Err)
	}
}

func TestDecideOpWindow(t *testing.T) {
	inj := New(Schedule{Seed: 1, Rules: []Rule{
		{Fault: ScanError, Node: Any, Region: 2, Replica: Any, FromOp: 1, ToOp: 3},
	}})
	op := Op{Node: 0, Region: 2, Replica: 0}
	want := []bool{false, true, true, false, false}
	for i, w := range want {
		d := inj.Decide(op)
		if got := d.Err != nil; got != w {
			t.Fatalf("op %d: injected=%v, want %v", i, got, w)
		}
	}
}

func TestDecideDeterministicAcrossInjectors(t *testing.T) {
	sched := Schedule{Seed: 42, Rules: []Rule{
		{Fault: ScanError, Node: Any, Region: Any, Replica: Any, Prob: 0.4},
	}}
	a, b := New(sched), New(sched)
	op := Op{Node: 2, Region: 5, Replica: 1}
	hits := 0
	for i := 0; i < 200; i++ {
		da, db := a.Decide(op), b.Decide(op)
		if (da.Err == nil) != (db.Err == nil) {
			t.Fatalf("op %d: injectors disagree", i)
		}
		if da.Err != nil {
			hits++
		}
	}
	if hits < 40 || hits > 160 {
		t.Fatalf("prob 0.4 over 200 ops injected %d times — hash badly skewed", hits)
	}
}

func TestDecideIndependentTargets(t *testing.T) {
	// Interleaving ops on target B must not change target A's sequence.
	sched := Schedule{Seed: 9, Rules: []Rule{
		{Fault: Crash, Node: Any, Region: Any, Replica: Any, Prob: 0.5},
	}}
	opA := Op{Node: 0, Region: 0, Replica: 0}
	opB := Op{Node: 1, Region: 1, Replica: 1}

	plain := New(sched)
	var seqA []bool
	for i := 0; i < 50; i++ {
		seqA = append(seqA, plain.Decide(opA).Err != nil)
	}
	mixed := New(sched)
	for i := 0; i < 50; i++ {
		mixed.Decide(opB)
		if got := mixed.Decide(opA).Err != nil; got != seqA[i] {
			t.Fatalf("op %d: interleaving changed target A's fault sequence", i)
		}
	}
}

func TestDecideMergesRules(t *testing.T) {
	inj := New(Schedule{Seed: 3, Rules: []Rule{
		{Fault: Stall, Node: Any, Region: Any, Replica: Any, Duration: 10 * time.Millisecond},
		{Fault: Stall, Node: Any, Region: Any, Replica: Any, Duration: 30 * time.Millisecond},
		{Fault: SlowScan, Node: Any, Region: Any, Replica: Any, Factor: 4},
	}})
	d := inj.Decide(Op{})
	if d.Stall != 30*time.Millisecond {
		t.Fatalf("stall = %v, want max 30ms", d.Stall)
	}
	if d.SlowFactor != 4 {
		t.Fatalf("slow factor = %v, want 4", d.SlowFactor)
	}
	if d.Err != nil {
		t.Fatalf("unexpected error %v", d.Err)
	}
}

func TestNilInjectorNeverInjects(t *testing.T) {
	var inj *Injector
	d := inj.Decide(Op{Node: 1, Region: 2, Replica: 3})
	if d.Err != nil || d.Stall != 0 || d.SlowFactor != 0 {
		t.Fatalf("nil injector produced %+v", d)
	}
}

func TestDecideConcurrentUse(t *testing.T) {
	inj := New(Schedule{Seed: 11, Rules: []Rule{
		{Fault: ScanError, Node: Any, Region: Any, Replica: Any, Prob: 0.5},
	}})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				inj.Decide(Op{Node: g, Region: i % 4, Replica: i % 2})
			}
		}()
	}
	wg.Wait()
}

func TestSleepHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Sleep(ctx, time.Hour); !errors.Is(err, context.Canceled) {
		t.Fatalf("Sleep on cancelled ctx = %v, want Canceled", err)
	}
	if err := Sleep(context.Background(), time.Microsecond); err != nil {
		t.Fatalf("Sleep = %v", err)
	}
}

func TestParseSchedule(t *testing.T) {
	sched, err := ParseSchedule("stall:node=1,dur=400ms; slow:region=3,factor=5,prob=0.5;crash:replica=2,from=1,to=9;scanerr:", 99)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Seed != 99 || len(sched.Rules) != 4 {
		t.Fatalf("parsed %+v", sched)
	}
	r := sched.Rules[0]
	if r.Fault != Stall || r.Node != 1 || r.Region != Any || r.Duration != 400*time.Millisecond {
		t.Fatalf("rule 0 = %+v", r)
	}
	r = sched.Rules[1]
	if r.Fault != SlowScan || r.Region != 3 || r.Factor != 5 || r.Prob != 0.5 {
		t.Fatalf("rule 1 = %+v", r)
	}
	r = sched.Rules[2]
	if r.Fault != Crash || r.Replica != 2 || r.FromOp != 1 || r.ToOp != 9 {
		t.Fatalf("rule 2 = %+v", r)
	}
	if sched.Rules[3].Fault != ScanError {
		t.Fatalf("rule 3 = %+v", sched.Rules[3])
	}

	for _, bad := range []string{
		"explode:node=1",
		"stall:node=1",           // missing dur
		"slow:factor=0.5",        // factor must exceed 1
		"crash:prob=2",           // prob out of range
		"crash:node=x",           // non-numeric selector
		"stall:dur=400ms,oops=1", // unknown key
		"stall:dur",              // malformed option
		"crash:op=write",         // unknown op class
		"crash:op=",              // empty op class
		"crash:op=READ",          // op classes are lowercase
	} {
		if _, err := ParseSchedule(bad, 1); err == nil {
			t.Fatalf("ParseSchedule(%q) accepted invalid input", bad)
		}
	}
}

func TestParseScheduleOpSelector(t *testing.T) {
	sched, err := ParseSchedule("crash:op=put,node=2;stall:op=ship,dur=5ms;scanerr:op=read", 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := []OpKind{sched.Rules[0].Op, sched.Rules[1].Op, sched.Rules[2].Op}; got[0] != OpPut || got[1] != OpShip || got[2] != OpRead {
		t.Fatalf("parsed op kinds = %v", got)
	}
	// Omitting op= must keep the pre-selector default (read).
	sched, err = ParseSchedule("crash:node=1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Rules[0].Op != OpRead {
		t.Fatalf("default op = %v, want OpRead", sched.Rules[0].Op)
	}
}

func TestDecideOpKindIsolation(t *testing.T) {
	inj := New(Schedule{Seed: 5, Rules: []Rule{
		{Fault: Crash, Op: OpPut, Node: Any, Region: Any, Replica: Any},
	}})
	if d := inj.Decide(Op{Kind: OpRead, Node: 1}); d.Err != nil {
		t.Fatalf("put-only rule hit a read op: %v", d.Err)
	}
	if d := inj.Decide(Op{Kind: OpShip, Node: 1}); d.Err != nil {
		t.Fatalf("put-only rule hit a ship op: %v", d.Err)
	}
	if d := inj.Decide(Op{Kind: OpPut, Node: 1}); !errors.Is(d.Err, ErrInjectedCrash) {
		t.Fatalf("put rule missed a put op: %v", d.Err)
	}
	// A default (read) rule must not intercept writes — byte-compatibility
	// of every pre-selector schedule.
	legacy := New(Schedule{Seed: 5, Rules: []Rule{
		{Fault: Crash, Node: Any, Region: Any, Replica: Any},
	}})
	if d := legacy.Decide(Op{Kind: OpPut, Node: 1}); d.Err != nil {
		t.Fatalf("legacy read rule hit a put op: %v", d.Err)
	}
}

func TestOpKindString(t *testing.T) {
	for k, want := range map[OpKind]string{OpRead: "read", OpPut: "put", OpShip: "ship"} {
		if k.String() != want {
			t.Fatalf("OpKind(%d).String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{Crash: "crash", Stall: "stall", SlowScan: "slow", ScanError: "scanerr"} {
		if k.String() != want {
			t.Fatalf("Kind(%d).String() = %q, want %q", int(k), k.String(), want)
		}
	}
}
