package bench

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"modissense/client"
	"modissense/internal/core"
	"modissense/internal/kvstore"
)

// IngestConfig parameterizes the write-path experiment. Phase A measures the
// group-commit WAL against the seed's per-put fsync discipline at equal
// durability (every acknowledged append is fsynced before its writer
// returns). Phase B drives a sustained batched check-in stream through the
// real HTTP stack — durable WAL, small memtables so rotation, flush and
// size-tiered compaction all run mid-load — with concurrent readers, and
// checks that the write and read tails stay inside budget and that the
// compaction debt the load built up drains to zero afterwards.
type IngestConfig struct {
	// WALWriters concurrent appenders each append WALAppendsPerWriter cells
	// of WALValueBytes payload in both durability modes.
	WALWriters          int
	WALAppendsPerWriter int
	WALValueBytes       int
	// WALSpeedupMin gates group-commit throughput against the per-put
	// fsync baseline (the issue's >= 5x claim).
	WALSpeedupMin float64

	// POIs/Population size the platform behind the ingest stream.
	POIs       int
	Population int
	// Writers concurrent clients each push BatchesPerWriter batches of
	// BatchSize check-ins through POST /api/v1/checkins.
	Writers          int
	BatchesPerWriter int
	BatchSize        int
	// Readers concurrent clients each run ReadsPerReader personalized
	// searches while the ingest stream is live.
	Readers        int
	ReadsPerReader int
	// MemtableFlushBytes shrinks the per-region memtable so rotations and
	// background flushes happen constantly; CompactRateMBps caps the
	// background merges so the rate limiter is exercised too.
	MemtableFlushBytes int
	CompactRateMBps    float64
	// WriteP99Budget/ReadP99Budget gate the latency tails under ingest.
	WriteP99Budget time.Duration
	ReadP99Budget  time.Duration
	Seed           int64
}

// DefaultIngest sizes the experiment so flushes and background compactions
// demonstrably run during the load while the whole thing stays under a
// minute on a laptop.
func DefaultIngest() IngestConfig {
	return IngestConfig{
		WALWriters:          16,
		WALAppendsPerWriter: 150,
		WALValueBytes:       128,
		WALSpeedupMin:       5,
		POIs:                300,
		Population:          600,
		Writers:             6,
		BatchesPerWriter:    20,
		BatchSize:           40,
		Readers:             4,
		ReadsPerReader:      15,
		MemtableFlushBytes:  16 << 10,
		CompactRateMBps:     8,
		WriteP99Budget:      300 * time.Millisecond,
		ReadP99Budget:       750 * time.Millisecond,
		Seed:                91,
	}
}

// IngestWALMode is one durability mode's phase-A measurement.
type IngestWALMode struct {
	Mode          string  `json:"mode"`
	Writers       int     `json:"writers"`
	Appends       int     `json:"appends"`
	Seconds       float64 `json:"seconds"`
	AppendsPerSec float64 `json:"appends_per_sec"`
}

// IngestResult is the full experiment outcome, JSON-tagged for
// BENCH_ingest.json.
type IngestResult struct {
	// WALModes holds the per-put baseline and the group-commit run;
	// WALSpeedup is group throughput over per-put throughput.
	WALModes   []IngestWALMode `json:"wal_equal_durability"`
	WALSpeedup float64         `json:"wal_group_speedup"`

	// Phase-B tallies. BatchesSent x BatchSize check-ins are pushed;
	// CheckinsStored counts the server's acknowledgements.
	BatchesSent    int `json:"batches_sent"`
	CheckinsStored int `json:"checkins_stored"`
	WriteErrors    int `json:"write_errors"`
	ReadsOK        int `json:"reads_ok"`
	ReadErrors     int `json:"read_errors"`
	// Latency tails over the successful calls, wall-clock through HTTP.
	WriteP50Millis float64 `json:"write_p50_ms"`
	WriteP99Millis float64 `json:"write_p99_ms"`
	ReadP50Millis  float64 `json:"read_p50_ms"`
	ReadP99Millis  float64 `json:"read_p99_ms"`
	// Maintenance counters summed across the Visits table's regions.
	Flushes               uint64 `json:"flushes"`
	BackgroundCompactions uint64 `json:"background_compactions"`
	WriteStalls           uint64 `json:"write_stalls"`
	// PeakDebtBytes is the largest compaction debt sampled during the load;
	// FinalDebtBytes is the debt after WaitMaintenance (gated to zero).
	PeakDebtBytes  int64 `json:"peak_compaction_debt_bytes"`
	FinalDebtBytes int64 `json:"final_compaction_debt_bytes"`
}

// RunIngest executes both phases and returns the combined result.
func RunIngest(cfg IngestConfig) (*IngestResult, error) {
	if cfg.WALWriters < 1 || cfg.Writers < 1 || cfg.BatchSize < 1 {
		return nil, fmt.Errorf("bench: ingest experiment needs positive load")
	}
	res := &IngestResult{}
	if err := runIngestWAL(cfg, res); err != nil {
		return nil, err
	}
	if err := runIngestPlatform(cfg, res); err != nil {
		return nil, err
	}
	return res, nil
}

// runIngestWAL measures phase A: the same concurrent append load against a
// per-put-fsync FileWAL (the seed write path's durability discipline,
// serialized exactly as the store lock serialized it) and against the
// group-commit WAL under SyncGroup, where the leader's single fsync covers
// every writer in the commit group.
func runIngestWAL(cfg IngestConfig, res *IngestResult) error {
	dir, err := os.MkdirTemp("", "modissense-ingest-wal")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	value := bytes.Repeat([]byte{'v'}, cfg.WALValueBytes)
	cell := func(writer, i int) kvstore.Cell {
		return kvstore.Cell{
			Row:       fmt.Sprintf("w%03d-%06d", writer, i),
			Qualifier: "v",
			Timestamp: int64(i + 1),
			Value:     value,
		}
	}
	total := cfg.WALWriters * cfg.WALAppendsPerWriter

	// Per-put baseline: one record + one fsync per acknowledged append,
	// writers serialized by a mutex like the seed's store write lock.
	perput, err := kvstore.OpenFileWAL(filepath.Join(dir, "perput.wal"))
	if err != nil {
		return err
	}
	var mu sync.Mutex
	var firstErr atomic.Value
	record := func(err error) {
		if err != nil {
			firstErr.CompareAndSwap(nil, err)
		}
	}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.WALWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < cfg.WALAppendsPerWriter; i++ {
				mu.Lock()
				err := perput.Append(cell(w, i))
				if err == nil {
					err = perput.Sync()
				}
				mu.Unlock()
				record(err)
			}
		}(w)
	}
	wg.Wait()
	perputSec := time.Since(start).Seconds()
	if err := perput.Close(); err != nil {
		return err
	}

	// Group commit at the same durability: Append returns only after the
	// group's fsync, but concurrent writers share that fsync.
	group, err := kvstore.OpenGroupCommitWAL(filepath.Join(dir, "group.wal"), kvstore.SyncGroup)
	if err != nil {
		return err
	}
	start = time.Now()
	for w := 0; w < cfg.WALWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < cfg.WALAppendsPerWriter; i++ {
				record(group.Append(cell(w, i)))
			}
		}(w)
	}
	wg.Wait()
	groupSec := time.Since(start).Seconds()
	if err := group.Close(); err != nil {
		return err
	}
	if err, _ := firstErr.Load().(error); err != nil {
		return err
	}

	res.WALModes = []IngestWALMode{
		{Mode: "perput-fsync", Writers: cfg.WALWriters, Appends: total,
			Seconds: perputSec, AppendsPerSec: float64(total) / perputSec},
		{Mode: "group-commit", Writers: cfg.WALWriters, Appends: total,
			Seconds: groupSec, AppendsPerSec: float64(total) / groupSec},
	}
	res.WALSpeedup = res.WALModes[1].AppendsPerSec / res.WALModes[0].AppendsPerSec
	return nil
}

// runIngestPlatform measures phase B: concurrent batched check-in writers
// and search readers against one durable platform, then drains maintenance.
func runIngestPlatform(cfg IngestConfig, res *IngestResult) error {
	walDir, err := os.MkdirTemp("", "modissense-ingest-plat")
	if err != nil {
		return err
	}
	defer os.RemoveAll(walDir)

	pcfg := core.DefaultConfig()
	pcfg.POIs = cfg.POIs
	pcfg.NetworkPopulation = cfg.Population
	pcfg.MeanFriends = 12
	pcfg.ClassifierTrainDocs = 300
	pcfg.Seed = cfg.Seed
	pcfg.WALDir = walDir
	pcfg.WALSync = "group"
	pcfg.MemtableFlushBytes = cfg.MemtableFlushBytes
	pcfg.CompactRateMBps = cfg.CompactRateMBps
	// A high write-QPS ceiling keeps the admission layer (and its
	// memtable-pressure hook) on the request path without rate-shaping the
	// load we are trying to measure.
	pcfg.WriteQPS = 100_000
	p, err := core.New(pcfg)
	if err != nil {
		return err
	}
	defer p.Close()
	since := time.Date(2015, 5, 1, 0, 0, 0, 0, time.UTC)
	until := time.Date(2015, 5, 8, 0, 0, 0, 0, time.UTC)
	if _, err := p.Collect(since, until); err != nil {
		return err
	}
	catalog := p.Catalog()

	srv := httptest.NewServer(core.NewHandler(p))
	defer srv.Close()

	// Sample compaction debt while the load runs.
	table := p.Visits.Table()
	stopSampling := make(chan struct{})
	var samplerDone sync.WaitGroup
	samplerDone.Add(1)
	go func() {
		defer samplerDone.Done()
		for {
			select {
			case <-stopSampling:
				return
			case <-time.After(10 * time.Millisecond):
				if d := tableDebtBytes(table); d > res.PeakDebtBytes {
					res.PeakDebtBytes = d
				}
			}
		}
	}()

	var (
		mu              sync.Mutex
		writeWall       []float64
		readWall        []float64
		stored, wErrors int64
		readsOK, rErrs  int64
		wg              sync.WaitGroup
	)
	baseMillis := until.UnixMilli()
	for wi := 0; wi < cfg.Writers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			cl, err := client.New(srv.URL, srv.Client())
			if err != nil {
				atomic.AddInt64(&wErrors, int64(cfg.BatchesPerWriter))
				return
			}
			// Writers honor Retry-After on pressure sheds (capped well below
			// the server's hint so the bench doesn't stall for seconds).
			cl.SetRetryPolicy(client.RetryPolicy{MaxRetries: 3, MaxWait: 50 * time.Millisecond, Budget: 64})
			if _, err := cl.SignIn("facebook", fmt.Sprintf("facebook:%d", wi+1)); err != nil {
				atomic.AddInt64(&wErrors, int64(cfg.BatchesPerWriter))
				return
			}
			for bi := 0; bi < cfg.BatchesPerWriter; bi++ {
				batch := make([]client.Checkin, cfg.BatchSize)
				for i := range batch {
					poi := catalog[(wi*7919+bi*131+i)%len(catalog)]
					batch[i] = client.Checkin{
						POIID:   poi.ID,
						Time:    baseMillis + int64(bi*cfg.BatchSize+i+1),
						Grade:   float64((i % 5) + 1),
						Network: "facebook",
					}
				}
				start := time.Now()
				r, err := cl.PushCheckins(batch)
				wall := time.Since(start).Seconds()
				if err != nil {
					atomic.AddInt64(&wErrors, 1)
					continue
				}
				atomic.AddInt64(&stored, int64(r.Stored))
				mu.Lock()
				writeWall = append(writeWall, wall)
				mu.Unlock()
			}
		}(wi)
	}
	for ri := 0; ri < cfg.Readers; ri++ {
		wg.Add(1)
		go func(ri int) {
			defer wg.Done()
			cl, err := client.New(srv.URL, srv.Client())
			if err != nil {
				atomic.AddInt64(&rErrs, int64(cfg.ReadsPerReader))
				return
			}
			if _, err := cl.SignIn("facebook", fmt.Sprintf("facebook:%d", cfg.Writers+ri+1)); err != nil {
				atomic.AddInt64(&rErrs, int64(cfg.ReadsPerReader))
				return
			}
			friends, err := cl.Friends("")
			if err != nil {
				atomic.AddInt64(&rErrs, int64(cfg.ReadsPerReader))
				return
			}
			ids := make([]int64, 0, len(friends))
			for _, f := range friends {
				ids = append(ids, f.ID)
			}
			for i := 0; i < cfg.ReadsPerReader; i++ {
				start := time.Now()
				_, err := cl.Search(client.SearchParams{Friends: ids, From: since, To: until, Limit: 5})
				wall := time.Since(start).Seconds()
				if err != nil {
					atomic.AddInt64(&rErrs, 1)
					continue
				}
				atomic.AddInt64(&readsOK, 1)
				mu.Lock()
				readWall = append(readWall, wall)
				mu.Unlock()
			}
		}(ri)
	}
	wg.Wait()
	close(stopSampling)
	samplerDone.Wait()

	// Drain every queued flush and background compaction, then read the
	// final debt: the maintenance the load deferred must actually complete.
	if err := table.WaitMaintenance(); err != nil {
		return err
	}
	res.FinalDebtBytes = tableDebtBytes(table)
	for _, r := range table.Regions() {
		st := r.Store().Stats()
		res.Flushes += st.Flushes
		res.BackgroundCompactions += st.BackgroundCompactions
		res.WriteStalls += st.WriteStalls
	}

	res.BatchesSent = cfg.Writers * cfg.BatchesPerWriter
	res.CheckinsStored = int(stored)
	res.WriteErrors = int(wErrors)
	res.ReadsOK = int(readsOK)
	res.ReadErrors = int(rErrs)
	sort.Float64s(writeWall)
	sort.Float64s(readWall)
	res.WriteP50Millis = 1000 * percentile(writeWall, 0.50)
	res.WriteP99Millis = 1000 * percentile(writeWall, 0.99)
	res.ReadP50Millis = 1000 * percentile(readWall, 0.50)
	res.ReadP99Millis = 1000 * percentile(readWall, 0.99)
	return nil
}

// tableDebtBytes sums the size-tiered compaction debt across a table's
// regions.
func tableDebtBytes(t *kvstore.Table) int64 {
	var debt int64
	for _, r := range t.Regions() {
		debt += r.Store().Stats().CompactionDebtBytes
	}
	return debt
}
