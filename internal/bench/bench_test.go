package bench

import (
	"strings"
	"testing"
)

// quickDataset shrinks the dataset so shape tests stay fast.
func quickDataset() DatasetConfig {
	ds := DefaultDataset()
	ds.POIs = 500
	ds.Users = 1500
	ds.Regions = 32
	return ds
}

func TestDatasetValidation(t *testing.T) {
	bad := DefaultDataset()
	bad.Users = 0
	if _, err := BuildDataset(bad, 4); err == nil {
		t.Error("invalid dataset must fail")
	}
}

func TestBuildDatasetDeterministic(t *testing.T) {
	cfg := quickDataset()
	cfg.Users = 200
	a, err := BuildDataset(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildDataset(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalVisits != b.TotalVisits {
		t.Errorf("dataset not deterministic: %d vs %d visits", a.TotalVisits, b.TotalVisits)
	}
	if a.TotalVisits < 200*10 {
		t.Errorf("suspiciously few visits: %d", a.TotalVisits)
	}
}

func TestFig2ShapeQuick(t *testing.T) {
	cfg := Fig2Config{
		Dataset:      quickDataset(),
		FriendCounts: []int{200, 800, 1400},
		Nodes:        []int{4, 16},
		Repetitions:  2,
		Seed:         42,
	}
	points, err := RunFig2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	SortFig2(points)
	byKey := map[[2]int]float64{}
	for _, p := range points {
		byKey[[2]int{p.Nodes, p.Friends}] = p.LatencySeconds
		if p.LatencySeconds <= 0 {
			t.Fatalf("non-positive latency: %+v", p)
		}
		if p.PaperEquivalentSeconds != p.LatencySeconds*float64(cfg.Dataset.VisitScale) {
			t.Fatalf("paper-equivalent rescale wrong: %+v", p)
		}
	}
	// Latency increases with friends on each cluster size.
	for _, nodes := range cfg.Nodes {
		if !(byKey[[2]int{nodes, 200}] < byKey[[2]int{nodes, 800}] && byKey[[2]int{nodes, 800}] < byKey[[2]int{nodes, 1400}]) {
			t.Errorf("nodes=%d: latency not increasing in friends: %v", nodes, byKey)
		}
	}
	// Bigger cluster is faster at every friend count.
	for _, f := range cfg.FriendCounts {
		if byKey[[2]int{16, f}] >= byKey[[2]int{4, f}] {
			t.Errorf("friends=%d: 16 nodes (%g) not faster than 4 (%g)", f, byKey[[2]int{16, f}], byKey[[2]int{4, f}])
		}
	}
	// Rough linearity in friends: slope between consecutive segments
	// should not explode (factor < 3 difference).
	for _, nodes := range cfg.Nodes {
		s1 := (byKey[[2]int{nodes, 800}] - byKey[[2]int{nodes, 200}]) / 600
		s2 := (byKey[[2]int{nodes, 1400}] - byKey[[2]int{nodes, 800}]) / 600
		if s1 <= 0 || s2 <= 0 || s2/s1 > 3 || s1/s2 > 3 {
			t.Errorf("nodes=%d: segment slopes %g vs %g not roughly linear", nodes, s1, s2)
		}
	}
	if _, err := RunFig2(Fig2Config{Dataset: quickDataset(), FriendCounts: []int{10}, Nodes: []int{2}, Repetitions: 0}); err == nil {
		t.Error("zero repetitions must fail")
	}
	if _, err := RunFig2(Fig2Config{Dataset: quickDataset(), FriendCounts: []int{999999}, Nodes: []int{2}, Repetitions: 1}); err == nil {
		t.Error("oversize friend count must fail")
	}
}

func TestFig3ShapeQuick(t *testing.T) {
	cfg := Fig3Config{
		Dataset:         quickDataset(),
		Concurrency:     []int{4, 12},
		Nodes:           []int{4, 16},
		FriendsPerQuery: 600,
		Seed:            43,
	}
	points, err := RunFig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	SortFig3(points)
	byKey := map[[2]int]float64{}
	for _, p := range points {
		byKey[[2]int{p.Nodes, p.Concurrent}] = p.AvgLatencySeconds
	}
	for _, nodes := range cfg.Nodes {
		if byKey[[2]int{nodes, 12}] <= byKey[[2]int{nodes, 4}] {
			t.Errorf("nodes=%d: concurrency must increase latency", nodes)
		}
	}
	for _, m := range cfg.Concurrency {
		if byKey[[2]int{16, m}] >= byKey[[2]int{4, m}] {
			t.Errorf("m=%d: 16 nodes must beat 4", m)
		}
	}
	// The 16-node cluster must degrade slower with concurrency than the
	// 4-node one (the paper's "resistance to concurrency").
	growth4 := byKey[[2]int{4, 12}] - byKey[[2]int{4, 4}]
	growth16 := byKey[[2]int{16, 12}] - byKey[[2]int{16, 4}]
	if growth16 >= growth4 {
		t.Errorf("16-node growth %g must be below 4-node growth %g", growth16, growth4)
	}
	if _, err := RunFig3(Fig3Config{Dataset: quickDataset(), Concurrency: []int{1}, Nodes: []int{2}, FriendsPerQuery: 0}); err == nil {
		t.Error("zero friends must fail")
	}
}

func TestFig4ShapeQuick(t *testing.T) {
	cfg := DefaultFig4()
	cfg.TrainSizes = []int{300, 1000, 6000}
	cfg.TestDocs = 800
	points, err := RunFig4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	acc := map[[2]interface{}]float64{}
	for _, p := range points {
		acc[[2]interface{}{p.TrainDocs, p.Pipeline}] = p.Accuracy
		if p.PaperEquivalentDocs != p.TrainDocs*Fig4Scale {
			t.Fatalf("scale mismatch: %+v", p)
		}
	}
	// Optimized beats baseline at every size.
	for _, n := range cfg.TrainSizes {
		if acc[[2]interface{}{n, "optimized"}] <= acc[[2]interface{}{n, "baseline"}] {
			t.Errorf("n=%d: optimized (%g) must beat baseline (%g)", n,
				acc[[2]interface{}{n, "optimized"}], acc[[2]interface{}{n, "baseline"}])
		}
	}
	// The optimized pipeline peaks at the quality threshold and degrades.
	if acc[[2]interface{}{1000, "optimized"}] <= acc[[2]interface{}{6000, "optimized"}] {
		t.Errorf("accuracy must degrade past the threshold: 1000→%g, 6000→%g",
			acc[[2]interface{}{1000, "optimized"}], acc[[2]interface{}{6000, "optimized"}])
	}
	if _, err := RunFig4(Fig4Config{}); err == nil {
		t.Error("empty config must fail")
	}
}

func TestAccuracyClaim(t *testing.T) {
	acc, err := AccuracyClaim(46)
	if err != nil {
		t.Fatal(err)
	}
	// The paper claims 94%; the synthetic corpus should land within a few
	// points of it.
	if acc < 0.90 || acc > 1.0 {
		t.Errorf("threshold accuracy = %.3f, want ≈0.94", acc)
	}
}

func TestSchemaAblationQuick(t *testing.T) {
	cfg := DefaultSchemaAblation()
	cfg.Dataset = quickDataset()
	cfg.Friends = 500
	rows, err := RunSchemaAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	var repl, norm SchemaAblationRow
	for _, r := range rows {
		if r.Schema == "replicated" {
			repl = r
		} else {
			norm = r
		}
	}
	if repl.LatencySeconds >= norm.LatencySeconds {
		t.Errorf("replicated (%g) must beat normalized (%g)", repl.LatencySeconds, norm.LatencySeconds)
	}
	if repl.CandidatesMoved >= norm.CandidatesMoved {
		t.Errorf("replicated must ship fewer candidates: %d vs %d", repl.CandidatesMoved, norm.CandidatesMoved)
	}
	if repl.ResultPOIs != norm.ResultPOIs {
		t.Errorf("schemas must agree on results: %d vs %d", repl.ResultPOIs, norm.ResultPOIs)
	}
}

func TestRegionAblationQuick(t *testing.T) {
	cfg := DefaultRegionAblation()
	cfg.Dataset = quickDataset()
	cfg.Friends = 500
	cfg.RegionCounts = []int{2, 8, 32}
	rows, err := RunRegionAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// More regions must help up to the core count (4 nodes × 2 cores = 8
	// parallel slots): 2 regions underuse the cluster.
	if rows[0].LatencySeconds <= rows[1].LatencySeconds {
		t.Errorf("2 regions (%g) must be slower than 8 (%g)", rows[0].LatencySeconds, rows[1].LatencySeconds)
	}
}

func TestDBSCANExperiment(t *testing.T) {
	cfg := DefaultDBSCAN()
	cfg.Gatherings = 6
	cfg.PointsPerGathering = 80
	cfg.NoisePoints = 400
	cfg.Nodes = []int{4, 16}
	rows, err := RunDBSCAN(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.AgreesWithSeq {
			t.Errorf("nodes=%d: MR-DBSCAN disagrees with sequential oracle", r.Nodes)
		}
		if r.ClustersFound != cfg.Gatherings {
			t.Errorf("nodes=%d: found %d clusters, planted %d", r.Nodes, r.ClustersFound, cfg.Gatherings)
		}
	}
	if rows[1].SimulatedSeconds >= rows[0].SimulatedSeconds {
		t.Errorf("16 nodes (%g) must beat 4 (%g)", rows[1].SimulatedSeconds, rows[0].SimulatedSeconds)
	}
	if _, err := RunDBSCAN(DBSCANConfig{}); err == nil {
		t.Error("invalid config must fail")
	}
}

func TestRenderTable(t *testing.T) {
	out := RenderTable([]string{"a", "long-header"}, [][]string{{"1", "2"}, {"333", "4"}})
	if !strings.Contains(out, "long-header") || !strings.Contains(out, "333") {
		t.Errorf("table rendering broken:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Errorf("expected 4 lines, got %d", len(lines))
	}
}

func TestWebServerAblationQuick(t *testing.T) {
	cfg := DefaultWebServerAblation()
	cfg.Dataset = quickDataset()
	cfg.Concurrent = 12
	cfg.FriendsPerQuery = 500
	rows, err := RunWebServerAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	one, two, four := rows[0], rows[1], rows[2]
	if one.WebServers != 1 || two.WebServers != 2 || four.WebServers != 4 {
		t.Fatalf("unexpected order: %+v", rows)
	}
	// The paper's claim: two servers suffice — growing the farm further
	// must not improve average latency meaningfully (< 5%).
	if improvement := (two.AvgLatencySeconds - four.AvgLatencySeconds) / two.AvgLatencySeconds; improvement > 0.05 {
		t.Errorf("2→4 web servers improved latency by %.1f%%; web farm should not be the bottleneck", improvement*100)
	}
	// And one server must not be catastrophically worse either — merges
	// are cheap relative to region work.
	if one.AvgLatencySeconds > two.AvgLatencySeconds*2 {
		t.Errorf("single web server latency %.3fs vs %.3fs suggests an implausible bottleneck", one.AvgLatencySeconds, two.AvgLatencySeconds)
	}
}
