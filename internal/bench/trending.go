package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"modissense/internal/cluster"
	"modissense/internal/core"
	"modissense/internal/kvstore"
	"modissense/internal/matview"
	"modissense/internal/model"
	"modissense/internal/query"
	"modissense/internal/relstore"
	"modissense/internal/repos"
	"modissense/internal/workload"
)

// TrendingConfig parameterizes the materialized-trending experiment.
//
// Phase A pits the incrementally maintained view against the scan path
// while visit history grows 1× → 8× → 64×: the query window stays a
// constant trailing day, so the view's work is bounded by the horizon
// while the scan's grows with history. Phase B replays a repeat-heavy
// personalized workload (the TextBenDS-style top-k pattern: few distinct
// queries, many repetitions) against the result cache and gates the
// speedup of a warm hit over a cold computation. Phase C boots the full
// platform and checks the cache hit rate is readable off /metrics.
// Phase D proves cached answers byte-identical to scan-path answers,
// including across an invalidating friend check-in.
type TrendingConfig struct {
	// HistoryDays are the phase-A history sizes; each scale stores
	// VisitsPerDay check-ins per day ending at a fixed instant.
	HistoryDays []int
	// VisitsPerDay is the fixed ingest rate, so history size is the only
	// variable across scales.
	VisitsPerDay int
	// Users is the synthetic population (phase A and B share it).
	Users int
	// POIs sizes the catalog.
	POIs int
	// QueriesPerScale trending queries are timed per history size.
	QueriesPerScale int
	// BucketMillis/HorizonMillis shape the view under test.
	BucketMillis, HorizonMillis int64
	// FlatSlack bounds phase A: the largest scale's view p99 must stay
	// within FlatSlack × the smallest scale's view p99 (plus a small
	// absolute floor so microsecond-level noise cannot flip the gate).
	FlatSlack float64
	// DistinctQueries/RepeatsPerQuery shape the phase-B repeat workload.
	DistinctQueries int
	RepeatsPerQuery int
	// FriendsPerQuery is the friend-set size of each personalized query.
	FriendsPerQuery int
	// MinSpeedup gates phase B: mean cold latency / mean warm latency.
	MinSpeedup float64
	// CacheMB is the result-cache budget for phases B-D.
	CacheMB int
	Seed    int64
}

// DefaultTrending sizes the experiment so the 64× history is large enough
// for the scan path to visibly grow while the whole run stays in seconds.
func DefaultTrending() TrendingConfig {
	return TrendingConfig{
		HistoryDays:     []int{2, 16, 128},
		VisitsPerDay:    3000,
		Users:           200,
		POIs:            400,
		QueriesPerScale: 40,
		BucketMillis:    int64(time.Hour / time.Millisecond),
		HorizonMillis:   int64(48 * time.Hour / time.Millisecond),
		FlatSlack:       3,
		DistinctQueries: 16,
		RepeatsPerQuery: 6,
		FriendsPerQuery: 24,
		MinSpeedup:      10,
		CacheMB:         16,
		Seed:            229,
	}
}

// TrendingScaleRow is one phase-A history size.
type TrendingScaleRow struct {
	HistoryDays int     `json:"history_days"`
	Visits      int     `json:"visits"`
	ViewBuckets int     `json:"view_buckets"`
	ViewP50Ms   float64 `json:"view_p50_ms"`
	ViewP99Ms   float64 `json:"view_p99_ms"`
	// Recompute* time the non-materialized baseline: re-aggregating the
	// window with one pass over stored history (what the HotIn batch job
	// does), whose row count grows with history while the view's work
	// stays horizon-bounded.
	RecomputeP50Ms float64 `json:"recompute_p50_ms"`
	RecomputeP99Ms float64 `json:"recompute_p99_ms"`
	RecomputeRows  int64   `json:"recompute_rows"`
}

// TrendingResult is the full experiment outcome, JSON-tagged for
// BENCH_trending.json.
type TrendingResult struct {
	Scales []TrendingScaleRow `json:"scales"`

	// Phase B: repeat-query cache workload.
	ColdQueries    int     `json:"cold_queries"`
	WarmQueries    int     `json:"warm_queries"`
	ColdMeanMs     float64 `json:"cold_mean_ms"`
	WarmMeanMs     float64 `json:"warm_mean_ms"`
	RepeatSpeedup  float64 `json:"repeat_speedup"`
	CacheHits      int64   `json:"cache_hits"`
	CacheMisses    int64   `json:"cache_misses"`
	CacheHitRatio  float64 `json:"cache_hit_ratio"`
	UnexpectedMiss int     `json:"unexpected_misses"`

	// Phase C: exposition through the platform's /metrics.
	MetricsHits     float64 `json:"metrics_cache_hits_total"`
	MetricsFamilies int     `json:"metrics_matview_families"`

	// Phase D: cached-vs-scan equivalence.
	EquivalenceChecks int `json:"equivalence_checks"`
	EquivalenceEqual  int `json:"equivalence_equal"`
}

// trendingFixture is one history scale: repos + an engine with the view
// (and optionally the cache) attached.
type trendingFixture struct {
	visits     *repos.VisitsRepo
	pois       *repos.POIRepo
	viewEng    *query.Engine
	view       *matview.HotInView
	cache      *matview.ResultCache
	endMillis  int64
	totalRows  int
	catalogLen int
}

// buildTrendingFixture stores `days` of fixed-rate history ending at a
// fixed instant. The view is wired to the store hook, so population runs
// through the same incremental-apply path production ingest uses.
func buildTrendingFixture(cfg TrendingConfig, days int, withCache bool) (*trendingFixture, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + int64(days)))
	catalog := workload.GenPOIs(rng, cfg.POIs)
	db := relstore.NewDB()
	poiRepo, err := repos.NewPOIRepo(db)
	if err != nil {
		return nil, err
	}
	for _, p := range catalog {
		if _, err := poiRepo.Insert(p); err != nil {
			return nil, err
		}
	}
	kvOpts := kvstore.DefaultStoreOptions()
	kvOpts.Seed = cfg.Seed
	visits, err := repos.NewVisitsRepo(repos.SchemaReplicated, int64(cfg.Users), 16, 4, kvOpts)
	if err != nil {
		return nil, err
	}
	view, err := matview.NewHotInView(matview.ViewOptions{BucketMillis: cfg.BucketMillis, HorizonMillis: cfg.HorizonMillis})
	if err != nil {
		return nil, err
	}
	f := &trendingFixture{visits: visits, pois: poiRepo, view: view, catalogLen: len(catalog)}
	if withCache {
		f.cache = matview.NewResultCache(int64(cfg.CacheMB) << 20)
	}
	visits.SetOnStore(func(vs []model.Visit) {
		view.Apply(vs)
		if f.cache != nil {
			users := make([]int64, 0, len(vs))
			for i := range vs {
				users = append(users, vs[i].UserID)
			}
			f.cache.Invalidate(users)
		}
	})

	end := time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC)
	f.endMillis = model.Millis(end)
	start := end.AddDate(0, 0, -days)
	startMillis := model.Millis(start)
	span := f.endMillis - startMillis
	total := days * cfg.VisitsPerDay
	batch := make([]model.Visit, 0, 1000)
	for i := 0; i < total; i++ {
		batch = append(batch, model.Visit{
			UserID:  int64(rng.Intn(cfg.Users) + 1),
			Time:    startMillis + rng.Int63n(span),
			Grade:   float64(rng.Intn(5) + 1),
			Network: "facebook",
			POI:     catalog[rng.Intn(len(catalog))],
		})
		if len(batch) == cap(batch) {
			if err := visits.StoreBatch(batch); err != nil {
				return nil, err
			}
			batch = batch[:0]
		}
	}
	if len(batch) > 0 {
		if err := visits.StoreBatch(batch); err != nil {
			return nil, err
		}
	}
	f.totalRows = total

	clus, err := cluster.New(cluster.DefaultConfig(4))
	if err != nil {
		return nil, err
	}
	if f.viewEng, err = query.NewEngine(visits, poiRepo, clus); err != nil {
		return nil, err
	}
	f.viewEng.SetHotInView(view)
	if f.cache != nil {
		f.viewEng.SetResultCache(f.cache)
	}
	return f, nil
}

// RunTrending executes all four phases.
func RunTrending(cfg TrendingConfig) (*TrendingResult, error) {
	if len(cfg.HistoryDays) < 2 || cfg.VisitsPerDay < 1 || cfg.QueriesPerScale < 1 {
		return nil, fmt.Errorf("bench: trending experiment needs >= 2 history scales and positive load")
	}
	res := &TrendingResult{}
	if err := runTrendingScales(cfg, res); err != nil {
		return nil, err
	}
	if err := runTrendingRepeats(cfg, res); err != nil {
		return nil, err
	}
	if err := runTrendingMetrics(cfg, res); err != nil {
		return nil, err
	}
	return res, nil
}

// runTrendingScales is phase A: wall-clock of the view path vs the scan
// path over a constant trailing-day window as history grows.
func runTrendingScales(cfg TrendingConfig, res *TrendingResult) error {
	box := workload.GreeceBounds()
	for _, days := range cfg.HistoryDays {
		f, err := buildTrendingFixture(cfg, days, false)
		if err != nil {
			return err
		}
		spec := query.Spec{
			BBox:       &box,
			FromMillis: f.endMillis - 24*int64(time.Hour/time.Millisecond),
			ToMillis:   f.endMillis,
			Limit:      10,
		}
		viewOne := func() (float64, error) {
			t0 := time.Now()
			r, err := f.viewEng.Trending(context.Background(), spec)
			if err != nil {
				return 0, err
			}
			if len(r.POIs) == 0 {
				return 0, fmt.Errorf("bench: trending over %d days returned nothing", days)
			}
			return time.Since(t0).Seconds() * 1000, nil
		}
		// The non-materialized baseline: re-aggregate the window with one
		// pass over stored history, the way the HotIn batch job does. Its
		// row count is the full history, whatever the window.
		var recomputeRows int64
		recomputeOne := func() (float64, error) {
			t0 := time.Now()
			counts := make(map[int64]int)
			var rows int64
			err := f.visits.ScanAll(func(v model.Visit) bool {
				rows++
				if v.Time >= spec.FromMillis && v.Time < spec.ToMillis {
					counts[v.POI.ID]++
				}
				return true
			})
			if err != nil {
				return 0, err
			}
			if len(counts) == 0 {
				return 0, fmt.Errorf("bench: recompute over %d days aggregated nothing", days)
			}
			recomputeRows = rows
			return time.Since(t0).Seconds() * 1000, nil
		}
		// Time each path in its own uninterrupted block, with the
		// fixture-build garbage collected first: interleaving the
		// sub-millisecond view reads with the multi-hundred-millisecond
		// recompute scans lets the baseline's allocation debt land GC
		// pauses inside the view timings, inflating the view p99 with
		// history for reasons that have nothing to do with the view.
		runtime.GC()
		var viewMs, recomputeMs []float64
		for i := 0; i < cfg.QueriesPerScale; i++ {
			ms, err := viewOne()
			if err != nil {
				return err
			}
			viewMs = append(viewMs, ms)
		}
		for i := 0; i < cfg.QueriesPerScale; i++ {
			ms, err := recomputeOne()
			if err != nil {
				return err
			}
			recomputeMs = append(recomputeMs, ms)
		}
		sort.Float64s(viewMs)
		sort.Float64s(recomputeMs)
		res.Scales = append(res.Scales, TrendingScaleRow{
			HistoryDays:    days,
			Visits:         f.totalRows,
			ViewBuckets:    f.view.Buckets(),
			ViewP50Ms:      percentile(viewMs, 0.50),
			ViewP99Ms:      percentile(viewMs, 0.99),
			RecomputeP50Ms: percentile(recomputeMs, 0.50),
			RecomputeP99Ms: percentile(recomputeMs, 0.99),
			RecomputeRows:  recomputeRows,
		})
	}
	return nil
}

// runTrendingRepeats is phase B (repeat-query cache speedup) and phase D
// (cached-vs-scan byte equivalence) over one cached fixture at the middle
// history scale.
func runTrendingRepeats(cfg TrendingConfig, res *TrendingResult) error {
	days := cfg.HistoryDays[len(cfg.HistoryDays)/2]
	f, err := buildTrendingFixture(cfg, days, true)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 7))
	box := workload.GreeceBounds()
	from := f.endMillis - 36*int64(time.Hour/time.Millisecond)

	// The distinct-query pool: a repeat-heavy top-k workload replays these
	// over and over, which is exactly what the cache is for.
	specs := make([]query.Spec, cfg.DistinctQueries)
	for i := range specs {
		specs[i] = query.Spec{
			FriendIDs:  workload.GenFriendList(rng, 0, cfg.Users, cfg.FriendsPerQuery),
			BBox:       &box,
			FromMillis: from,
			ToMillis:   f.endMillis,
			Limit:      10,
		}
	}

	hits0 := matview.CacheHitsTotal()
	misses0 := matview.CacheMissesTotal()
	ctx := context.Background()
	coldJSON := make([][]byte, len(specs))
	var coldSum, warmSum float64
	for i, spec := range specs {
		t0 := time.Now()
		r, err := f.viewEng.Run(ctx, spec)
		if err != nil {
			return err
		}
		coldSum += time.Since(t0).Seconds() * 1000
		if r.Cached {
			res.UnexpectedMiss++ // a cold query must not be a hit
		}
		if coldJSON[i], err = json.Marshal(r.POIs); err != nil {
			return err
		}
	}
	for rep := 0; rep < cfg.RepeatsPerQuery; rep++ {
		for i, spec := range specs {
			t0 := time.Now()
			r, err := f.viewEng.Run(ctx, spec)
			if err != nil {
				return err
			}
			warmSum += time.Since(t0).Seconds() * 1000
			if !r.Cached {
				res.UnexpectedMiss++
			}
			warm, err := json.Marshal(r.POIs)
			if err != nil {
				return err
			}
			res.EquivalenceChecks++
			if bytes.Equal(warm, coldJSON[i]) {
				res.EquivalenceEqual++
			}
		}
	}
	res.ColdQueries = len(specs)
	res.WarmQueries = len(specs) * cfg.RepeatsPerQuery
	res.ColdMeanMs = coldSum / float64(res.ColdQueries)
	res.WarmMeanMs = warmSum / float64(res.WarmQueries)
	if res.WarmMeanMs > 0 {
		res.RepeatSpeedup = res.ColdMeanMs / res.WarmMeanMs
	}
	res.CacheHits = matview.CacheHitsTotal() - hits0
	res.CacheMisses = matview.CacheMissesTotal() - misses0
	if total := res.CacheHits + res.CacheMisses; total > 0 {
		res.CacheHitRatio = float64(res.CacheHits) / float64(total)
	}

	// Phase D continued: an invalidating check-in by a cached friend, then
	// the recomputed answer must byte-match an uncached scan.
	for i, spec := range specs {
		friend := spec.FriendIDs[rng.Intn(len(spec.FriendIDs))]
		err := f.visits.Store(model.Visit{
			UserID: friend, Time: f.endMillis - 1000 - int64(i), Grade: 5, Network: "facebook",
			POI: poiSample(f, rng),
		})
		if err != nil {
			return err
		}
		recomputed, err := f.viewEng.Run(ctx, spec)
		if err != nil {
			return err
		}
		if recomputed.Cached {
			res.UnexpectedMiss++ // invalidation failed
		}
		uncachedSpec := spec
		uncachedSpec.NoCache = true
		uncached, err := f.viewEng.Run(ctx, uncachedSpec)
		if err != nil {
			return err
		}
		a, err := json.Marshal(recomputed.POIs)
		if err != nil {
			return err
		}
		b, err := json.Marshal(uncached.POIs)
		if err != nil {
			return err
		}
		res.EquivalenceChecks++
		if bytes.Equal(a, b) {
			res.EquivalenceEqual++
		}
	}
	return nil
}

// poiSample draws one catalog POI through the repo (the fixture does not
// retain the generated slice).
func poiSample(f *trendingFixture, rng *rand.Rand) model.POI {
	id := int64(rng.Intn(f.catalogLen) + 1)
	if p, ok := f.pois.Get(id); ok {
		return p
	}
	return model.POI{ID: id, Name: "poi"}
}

// runTrendingMetrics is phase C: the full platform over HTTP, checking the
// cache hit counter and the matview families are scrapeable off /metrics.
func runTrendingMetrics(cfg TrendingConfig, res *TrendingResult) error {
	pcfg := core.DefaultConfig()
	pcfg.POIs = 200
	pcfg.NetworkPopulation = 300
	pcfg.MeanFriends = 12
	pcfg.ClassifierTrainDocs = 300
	pcfg.Seed = cfg.Seed
	pcfg.HotInBucket = time.Duration(cfg.BucketMillis) * time.Millisecond
	pcfg.HotInHorizon = time.Duration(cfg.HorizonMillis) * time.Millisecond
	pcfg.ResultCacheMB = cfg.CacheMB
	p, err := core.New(pcfg)
	if err != nil {
		return err
	}
	defer p.Close()
	srv := httptest.NewServer(core.NewHandler(p))
	defer srv.Close()

	post := func(path string, body, out any) error {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(b))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			raw, _ := io.ReadAll(resp.Body)
			return fmt.Errorf("bench: %s: status %d: %s", path, resp.StatusCode, raw)
		}
		if out != nil {
			return json.NewDecoder(resp.Body).Decode(out)
		}
		return nil
	}
	var signin struct {
		UserID int64  `json:"user_id"`
		Token  string `json:"token"`
	}
	if err := post("/api/v1/signin", map[string]string{"network": "facebook", "credentials": "facebook:3"}, &signin); err != nil {
		return err
	}
	// A handful of check-ins, then the same personalized search twice: the
	// second must land in the cache.
	poi := p.Catalog()[0]
	base := time.Date(2015, 6, 1, 12, 0, 0, 0, time.UTC)
	checkins := map[string]any{
		"token": signin.Token,
		"checkins": []map[string]any{
			{"poi_id": poi.ID, "time": model.Millis(base), "grade": 4, "network": "facebook"},
			{"poi_id": poi.ID, "time": model.Millis(base.Add(time.Minute)), "grade": 5, "network": "facebook"},
		},
	}
	if err := post("/api/v1/checkins", checkins, nil); err != nil {
		return err
	}
	search := map[string]any{
		"token":   signin.Token,
		"friends": []int64{signin.UserID},
		"from":    base.Add(-time.Hour).Format(time.RFC3339),
		"to":      base.Add(time.Hour).Format(time.RFC3339),
		"limit":   5,
	}
	for i := 0; i < 2; i++ {
		if err := post("/api/v1/search", search, nil); err != nil {
			return err
		}
	}
	// One trending read off the view.
	trendURL := srv.URL + "/api/v1/trending?hours=24&limit=5&until=" + base.Add(time.Hour).Format(time.RFC3339)
	if resp, err := http.Get(trendURL); err != nil {
		return err
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("bench: trending status %d", resp.StatusCode)
		}
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	text := string(raw)
	for _, family := range []string{
		"matview_applies_total", "matview_buckets", "matview_reads_total",
		"matview_cache_hits_total", "matview_cache_misses_total", "matview_cache_bytes",
	} {
		if strings.Contains(text, family) {
			res.MetricsFamilies++
		}
	}
	res.MetricsHits = scrapeCounter(text, "matview_cache_hits_total")
	return nil
}

// scrapeCounter pulls one un-labeled counter's value out of a Prometheus
// text exposition.
func scrapeCounter(text, name string) float64 {
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "#") || !strings.HasPrefix(line, name) {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 || fields[0] != name {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err == nil {
			return v
		}
	}
	return 0
}
