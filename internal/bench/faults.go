package bench

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"modissense/internal/faultinject"
	"modissense/internal/query"
)

// FaultsConfig parameterizes the fault-tolerance experiment: the Figure 2
// workload replayed against a replicated dataset while a seeded fault
// schedule stalls one region server, measured with and without the hedged
// read path.
type FaultsConfig struct {
	Dataset DatasetConfig
	Nodes   int
	// Replicas is the read-replica count per region.
	Replicas int
	// Queries is the per-mode query count of the fault-free and hedged
	// runs.
	Queries int
	// UnprotectedQueries bounds the mechanism-disabled run separately —
	// each of its failures burns a full query timeout of wall clock.
	UnprotectedQueries int
	// Friends is the friend-list size of every query.
	Friends int
	// QueryTimeout is the per-query deadline; schedules that stall longer
	// than this make unprotected queries time out.
	QueryTimeout time.Duration
	// Schedule is the fault DSL (see faultinject.ParseSchedule) applied in
	// the faulted modes.
	Schedule string
	Seed     int64
}

// DefaultFaults stalls every read served by node 1 for longer than the
// query deadline: only replica reads on other nodes can answer in time.
func DefaultFaults() FaultsConfig {
	ds := DefaultDataset()
	ds.Users = 4000
	return FaultsConfig{
		Dataset:            ds,
		Nodes:              4,
		Replicas:           2,
		Queries:            120,
		UnprotectedQueries: 25,
		Friends:            1000,
		QueryTimeout:       250 * time.Millisecond,
		Schedule:           "stall:node=1,dur=400ms",
		Seed:               51,
	}
}

// FaultsMode is one mode's measurement, JSON-tagged for BENCH_faults.json.
// Modes: "fault-free" (hedged path, no faults — the latency baseline),
// "hedged" (faults + replicas + retries + hedging) and "unprotected"
// (faults with the mechanism disabled: one attempt, no hedge, no
// degradation).
type FaultsMode struct {
	Mode    string `json:"mode"`
	Queries int    `json:"queries"`
	// OK counts non-5xx answers (complete and degraded).
	OK int `json:"ok"`
	// Degraded counts answers missing at least one region.
	Degraded int `json:"degraded"`
	// Timeouts counts queries that hit the deadline (the API's 504).
	Timeouts int `json:"timeouts"`
	// Errors counts other failures (the API's 500).
	Errors       int     `json:"errors"`
	SuccessRate  float64 `json:"success_rate"`
	DegradedRate float64 `json:"degraded_rate"`
	// P50Millis/P99Millis are real wall-clock per-query latencies over every
	// query of the mode, timeouts included at the full deadline.
	P50Millis    float64 `json:"p50_ms"`
	P99Millis    float64 `json:"p99_ms"`
	Hedges       int64   `json:"hedges"`
	Retries      int64   `json:"retries"`
	ReplicaReads int64   `json:"replica_reads"`
}

// RunFaults executes the three modes on one replicated dataset and returns
// them in order: fault-free, hedged, unprotected. Every mode replays the
// identical query sequence (same seed), so the comparison isolates the
// fault handling.
func RunFaults(cfg FaultsConfig) ([]FaultsMode, error) {
	if cfg.Replicas < 1 {
		return nil, fmt.Errorf("bench: faults experiment needs replicas")
	}
	if cfg.Queries < 1 || cfg.UnprotectedQueries < 1 {
		return nil, fmt.Errorf("bench: faults experiment needs positive query counts")
	}
	if cfg.QueryTimeout <= 0 {
		return nil, fmt.Errorf("bench: faults experiment needs a query timeout")
	}
	sched, err := faultinject.ParseSchedule(cfg.Schedule, cfg.Seed)
	if err != nil {
		return nil, err
	}
	ds, err := BuildDataset(cfg.Dataset, cfg.Nodes)
	if err != nil {
		return nil, err
	}
	if err := ds.Visits.Table().EnableReplication(cfg.Replicas, 0); err != nil {
		return nil, err
	}
	if err := ds.Visits.Table().CatchUpReplication(); err != nil {
		return nil, err
	}

	hedged := query.DefaultReadPolicy()
	hedged.JitterSeed = cfg.Seed
	unprotected := query.ReadPolicy{MaxAttempts: 1, AllowDegraded: false}

	var out []FaultsMode
	for _, m := range []struct {
		name    string
		queries int
		pol     *query.ReadPolicy
		inj     *faultinject.Injector
	}{
		{"fault-free", cfg.Queries, &hedged, nil},
		{"hedged", cfg.Queries, &hedged, faultinject.New(sched)},
		{"unprotected", cfg.UnprotectedQueries, &unprotected, faultinject.New(sched)},
	} {
		mode, err := runFaultsMode(ds, cfg, m.name, m.queries, m.pol, m.inj)
		if err != nil {
			return nil, err
		}
		out = append(out, mode)
	}
	ds.Engine.SetFaultInjector(nil)
	ds.Engine.SetReadPolicy(nil)
	return out, nil
}

// runFaultsMode replays the query sequence under one policy/injector pair.
func runFaultsMode(ds *Dataset, cfg FaultsConfig, name string, queries int, pol *query.ReadPolicy, inj *faultinject.Injector) (FaultsMode, error) {
	ds.Engine.SetReadPolicy(pol)
	ds.Engine.SetFaultInjector(inj)
	from, to := ds.Window()
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := FaultsMode{Mode: name, Queries: queries}
	lats := make([]float64, 0, queries)
	for i := 0; i < queries; i++ {
		spec := query.Spec{
			FriendIDs:  ds.FriendSample(rng, cfg.Friends),
			FromMillis: from,
			ToMillis:   to,
			OrderBy:    query.ByInterest,
			Limit:      10,
		}
		ctx, cancel := context.WithTimeout(context.Background(), cfg.QueryTimeout)
		start := time.Now()
		res, err := ds.Engine.Run(ctx, spec)
		wall := time.Since(start).Seconds()
		cancel()
		lats = append(lats, wall)
		switch {
		case err == nil:
			m.OK++
			if res.Degraded {
				m.Degraded++
			}
			m.Hedges += res.Exec.Hedges
			m.Retries += res.Exec.Retries
			m.ReplicaReads += res.Exec.ReplicaReads
		case errors.Is(err, context.DeadlineExceeded):
			m.Timeouts++
		default:
			m.Errors++
		}
	}
	sort.Float64s(lats)
	m.P50Millis = 1000 * percentile(lats, 0.50)
	m.P99Millis = 1000 * percentile(lats, 0.99)
	m.SuccessRate = float64(m.OK) / float64(queries)
	m.DegradedRate = float64(m.Degraded) / float64(queries)
	return m, nil
}

// percentile reads the p-th quantile from an ascending-sorted sample.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
