package bench

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"modissense/internal/kvstore"
)

// BlocksConfig parameterizes the block-format experiment. Phase A builds
// the same visit-style dataset into an uncompressed store and a
// block-compressed store and compares the bytes each keeps resident. Phase
// B runs identical multi-range scan loads over both and compares tail
// latency: compression must not be paid for with scan regressions. Phase C
// re-reads rows under a Zipfian popularity curve against a block cache far
// smaller than the dataset and measures the hit rate. Phase D scans narrow
// far-apart ranges and probes absent rows, checking the per-block min/max
// and bloom filters skip blocks without decoding them.
type BlocksConfig struct {
	// Rows/QualsPerRow/ValueBytes size the dataset; values carry a
	// repetitive profile-like payload so flate has something to find.
	Rows        int
	QualsPerRow int
	ValueBytes  int
	// BlockSizeBytes is the target encoded block size for both stores.
	BlockSizeBytes int
	// Compression names the candidate codec (the baseline always runs
	// uncompressed).
	Compression kvstore.BlockCompression

	// ScanIterations multi-range scans run per store in phase B, each over
	// RangesPerScan random row ranges.
	ScanIterations int
	RangesPerScan  int

	// ZipfReads Gets run in phase C against a cache of ZipfCacheBytes
	// (sized well under the dataset) after ZipfWarm warmup reads; ZipfS is
	// the skew exponent. The phase-C store uses ZipfBlockSizeBytes — point
	// reads want small blocks so the cache holds many independent units
	// (the cache charges decoded cells at logical size, which for
	// compressible data is several times the encoded block size).
	ZipfReads          int
	ZipfWarm           int
	ZipfCacheBytes     int64
	ZipfBlockSizeBytes int
	ZipfS              float64

	// PrunedScans narrow scans and AbsentGets missing-row probes run in
	// phase D.
	PrunedScans int
	AbsentGets  int

	// Gates.
	ResidentReductionMin float64 // logical/resident on the candidate store
	ScanP99NoiseFactor   float64 // candidate p99 <= baseline p99 * factor
	ZipfHitRateMin       float64 // cache hit rate on the measured window
	Seed                 int64
}

// DefaultBlocks sizes the experiment so the dataset dwarfs the phase-C
// cache while the whole run stays in seconds.
func DefaultBlocks() BlocksConfig {
	return BlocksConfig{
		Rows:                 6000,
		QualsPerRow:          4,
		ValueBytes:           96,
		BlockSizeBytes:       kvstore.DefaultBlockSize,
		Compression:          kvstore.BlockFlate,
		ScanIterations:       300,
		RangesPerScan:        4,
		ZipfReads:            8000,
		ZipfWarm:             2000,
		ZipfCacheBytes:       512 << 10,
		ZipfBlockSizeBytes:   512,
		ZipfS:                1.4,
		PrunedScans:          200,
		AbsentGets:           500,
		ResidentReductionMin: 2.0,
		ScanP99NoiseFactor:   1.25,
		ZipfHitRateMin:       0.90,
		Seed:                 23,
	}
}

// BlocksStoreStats is one store's footprint snapshot.
type BlocksStoreStats struct {
	Codec         string  `json:"codec"`
	Segments      int     `json:"segments"`
	Blocks        int     `json:"blocks"`
	LogicalBytes  int64   `json:"logical_bytes"`
	ResidentBytes int64   `json:"resident_bytes"`
	Reduction     float64 `json:"reduction"`
}

// BlocksResult is the full experiment outcome, JSON-tagged for
// BENCH_blocks.json.
type BlocksResult struct {
	Baseline  BlocksStoreStats `json:"baseline"`
	Candidate BlocksStoreStats `json:"candidate"`

	// Phase-B multi-scan latencies, milliseconds.
	BaselineScanP50  float64 `json:"baseline_scan_p50_ms"`
	BaselineScanP99  float64 `json:"baseline_scan_p99_ms"`
	CandidateScanP50 float64 `json:"candidate_scan_p50_ms"`
	CandidateScanP99 float64 `json:"candidate_scan_p99_ms"`
	ScanRowsPerIter  int     `json:"scan_rows_per_iter"`

	// Phase-C cache behaviour over the measured (post-warmup) window.
	ZipfHits    int64   `json:"zipf_cache_hits"`
	ZipfMisses  int64   `json:"zipf_cache_misses"`
	ZipfHitRate float64 `json:"zipf_hit_rate"`
	Evictions   int64   `json:"zipf_cache_evictions"`

	// Phase-D pruning counters (deltas across the phase).
	PrunedBlocksSkipped int64 `json:"pruned_blocks_skipped"`
	PrunedBlocksDecoded int64 `json:"pruned_blocks_decoded"`
}

// buildBlocksStore fills a store with the deterministic visit dataset and
// flushes it into segments.
func buildBlocksStore(cfg BlocksConfig, blockSize int, codec kvstore.BlockCompression, cache *kvstore.BlockCache) (*kvstore.Store, error) {
	opts := kvstore.DefaultStoreOptions()
	opts.FlushThresholdBytes = 1 << 30
	opts.BlockSizeBytes = blockSize
	opts.BlockCompression = codec
	opts.BlockCache = cache
	s, err := kvstore.NewStore(opts)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	pad := make([]byte, cfg.ValueBytes)
	for i := range pad {
		pad[i] = "abcdefgh"[i%8]
	}
	for r := 0; r < cfg.Rows; r++ {
		row := blocksRow(r)
		for q := 0; q < cfg.QualsPerRow; q++ {
			val := fmt.Sprintf("poi=%06d grade=%d network=facebook text=%s", rng.Intn(2000), q%5, pad)
			if err := s.Put(row, fmt.Sprintf("q%02d", q), int64(q+1), []byte(val)); err != nil {
				return nil, err
			}
		}
		// Several segments so scans exercise the merge path too.
		if r%1500 == 1499 {
			if err := s.Flush(); err != nil {
				return nil, err
			}
		}
	}
	if err := s.Flush(); err != nil {
		return nil, err
	}
	return s, nil
}

func blocksRow(i int) string { return fmt.Sprintf("user/%08d/profile", i) }

func snapshotStore(s *kvstore.Store, codec string) BlocksStoreStats {
	st := s.Stats()
	out := BlocksStoreStats{
		Codec:         codec,
		Segments:      st.Segments,
		Blocks:        st.SegmentBlocks,
		LogicalBytes:  st.SegmentLogicalBytes,
		ResidentBytes: st.SegmentResidentBytes,
	}
	if out.ResidentBytes > 0 {
		out.Reduction = float64(out.LogicalBytes) / float64(out.ResidentBytes)
	}
	return out
}

// runBlocksScans drives the identical multi-range load over the baseline
// and candidate stores, interleaved — each iteration times the same range
// set against both back to back, so ambient noise (GC, scheduler) lands
// on both distributions instead of biasing whichever store ran last.
// Returns sorted per-iteration wall times for each store plus rows seen
// per iteration.
func runBlocksScans(cfg BlocksConfig, baseline, candidate *kvstore.Store) (bw, cw []float64, rowsPerIter int, err error) {
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	ctx := context.Background()
	// Warm pass: touch every block once so the timed iterations measure the
	// steady state the cache exists for, not first-read decompression.
	for _, s := range []*kvstore.Store{baseline, candidate} {
		if err := s.MultiScanCtx(ctx, []kvstore.ScanRange{{}}, 0, func(kvstore.RowResult) bool { return true }); err != nil {
			return nil, nil, 0, err
		}
	}
	for it := 0; it < cfg.ScanIterations; it++ {
		ranges := make([]kvstore.ScanRange, 0, cfg.RangesPerScan)
		starts := make([]int, cfg.RangesPerScan)
		for i := range starts {
			starts[i] = rng.Intn(cfg.Rows)
		}
		sort.Ints(starts)
		for i, st := range starts {
			span := 20 + rng.Intn(30)
			stop := st + span
			if i+1 < len(starts) && stop > starts[i+1] {
				stop = starts[i+1]
			}
			if stop <= st {
				continue
			}
			ranges = append(ranges, kvstore.ScanRange{Start: blocksRow(st), Stop: blocksRow(stop)})
		}
		// Min of three repeats per range set: a GC pause or scheduler
		// preemption hitting one repeat does not contaminate the sample,
		// so the p99 across range sets reflects the stores, not the noise.
		rows := 0
		bBest, cBest := 0.0, 0.0
		for rep := 0; rep < 3; rep++ {
			n := 0
			start := time.Now()
			err := baseline.MultiScanCtx(ctx, ranges, 0, func(kvstore.RowResult) bool {
				n++
				return true
			})
			if w := time.Since(start).Seconds(); rep == 0 || w < bBest {
				bBest = w
			}
			if err != nil {
				return nil, nil, 0, err
			}
			rows = n
			start = time.Now()
			err = candidate.MultiScanCtx(ctx, ranges, 0, func(kvstore.RowResult) bool { return true })
			if w := time.Since(start).Seconds(); rep == 0 || w < cBest {
				cBest = w
			}
			if err != nil {
				return nil, nil, 0, err
			}
		}
		bw = append(bw, bBest)
		cw = append(cw, cBest)
		if it == 0 {
			rowsPerIter = rows
		}
	}
	sort.Float64s(bw)
	sort.Float64s(cw)
	return bw, cw, rowsPerIter, nil
}

// RunBlocks executes all four phases and returns the combined result.
func RunBlocks(cfg BlocksConfig) (*BlocksResult, error) {
	if cfg.Rows < 1 || cfg.ScanIterations < 1 {
		return nil, fmt.Errorf("bench: blocks experiment needs positive load")
	}
	res := &BlocksResult{}

	// Phase A: footprint. Each store gets a private generous cache so
	// phase-B scans measure decode + merge cost, not eviction thrash.
	baseline, err := buildBlocksStore(cfg, cfg.BlockSizeBytes, kvstore.BlockNone, kvstore.NewBlockCache(256<<20))
	if err != nil {
		return nil, err
	}
	candidate, err := buildBlocksStore(cfg, cfg.BlockSizeBytes, cfg.Compression, kvstore.NewBlockCache(256<<20))
	if err != nil {
		return nil, err
	}
	res.Baseline = snapshotStore(baseline, "none")
	res.Candidate = snapshotStore(candidate, string(cfg.Compression))

	// Phase B: identical multi-scan load, interleaved over both stores.
	bw, cw, rows, err := runBlocksScans(cfg, baseline, candidate)
	if err != nil {
		return nil, err
	}
	res.ScanRowsPerIter = rows
	res.BaselineScanP50 = 1000 * percentile(bw, 0.50)
	res.BaselineScanP99 = 1000 * percentile(bw, 0.99)
	res.CandidateScanP50 = 1000 * percentile(cw, 0.50)
	res.CandidateScanP99 = 1000 * percentile(cw, 0.99)

	// Phase C: Zipfian point reads against a cache much smaller than the
	// dataset. The skewed head stays resident; the tail churns through.
	zipfCache := kvstore.NewBlockCache(cfg.ZipfCacheBytes)
	zstore, err := buildBlocksStore(cfg, cfg.ZipfBlockSizeBytes, cfg.Compression, zipfCache)
	if err != nil {
		return nil, err
	}
	zrng := rand.New(rand.NewSource(cfg.Seed + 2))
	zipf := rand.NewZipf(zrng, cfg.ZipfS, 1, uint64(cfg.Rows-1))
	readRow := func() error {
		_, err := zstore.Get(blocksRow(int(zipf.Uint64())))
		return err
	}
	for i := 0; i < cfg.ZipfWarm; i++ {
		if err := readRow(); err != nil {
			return nil, err
		}
	}
	warm := zipfCache.Stats()
	for i := 0; i < cfg.ZipfReads; i++ {
		if err := readRow(); err != nil {
			return nil, err
		}
	}
	after := zipfCache.Stats()
	res.ZipfHits = after.Hits - warm.Hits
	res.ZipfMisses = after.Misses - warm.Misses
	res.Evictions = after.Evictions - warm.Evictions
	if total := res.ZipfHits + res.ZipfMisses; total > 0 {
		res.ZipfHitRate = float64(res.ZipfHits) / float64(total)
	}

	// Phase D: narrow scans far into the keyspace plus absent-row probes.
	// Every block left of a range's start must be skipped, not decoded;
	// absent rows must die at the filters.
	decoded0, skipped0 := kvstore.BlockCounters()
	prng := rand.New(rand.NewSource(cfg.Seed + 3))
	ctx := context.Background()
	for i := 0; i < cfg.PrunedScans; i++ {
		start := cfg.Rows - 1 - prng.Intn(cfg.Rows/10+1)
		r := []kvstore.ScanRange{{Start: blocksRow(start), Stop: blocksRow(start + 2)}}
		if err := candidate.MultiScanCtx(ctx, r, 0, func(kvstore.RowResult) bool { return true }); err != nil {
			return nil, err
		}
	}
	for i := 0; i < cfg.AbsentGets; i++ {
		if _, err := candidate.Get(fmt.Sprintf("zzz/absent/%06d", i)); err != nil {
			return nil, err
		}
	}
	decoded1, skipped1 := kvstore.BlockCounters()
	res.PrunedBlocksDecoded = decoded1 - decoded0
	res.PrunedBlocksSkipped = skipped1 - skipped0
	return res, nil
}
