package bench

import (
	"fmt"
	"math/rand"

	"modissense/internal/cluster"
	"modissense/internal/dbscan"
	"modissense/internal/geo"
	"modissense/internal/textproc"
	"modissense/internal/workload"
)

// Fig4Config parameterizes Figure 4: classification accuracy vs training
// set size, baseline vs optimized pipeline.
type Fig4Config struct {
	// TrainSizes is the x-axis. The paper sweeps 1M–10M documents; the
	// harness corpus is 500× smaller, so the default sweep 200–20 000 maps
	// to 100k–10M with the quality threshold (paper: 500k) at 1 000.
	TrainSizes []int
	// TestDocs is the held-out evaluation set size.
	TestDocs int
	// Corpus tunes the generator.
	Corpus workload.ReviewCorpusOptions
	Seed   int64
}

// DefaultFig4 mirrors the paper's sweep at 500× reduction.
func DefaultFig4() Fig4Config {
	return Fig4Config{
		TrainSizes: []int{200, 500, 1000, 2000, 4000, 8000, 12000, 16000, 20000},
		TestDocs:   2000,
		Corpus:     workload.DefaultReviewOptions(),
		Seed:       46,
	}
}

// Fig4Point is one measured accuracy point.
type Fig4Point struct {
	TrainDocs int
	// PaperEquivalentDocs rescales the x-axis to the paper's corpus.
	PaperEquivalentDocs int
	Pipeline            string // "baseline" or "optimized"
	Accuracy            float64
}

// Fig4Scale is the corpus reduction factor relative to the paper.
const Fig4Scale = 500

// RunFig4 trains both pipelines at every size on prefixes of one corpus
// (matching how a growing crawl accumulates documents) and evaluates on a
// clean held-out set.
func RunFig4(cfg Fig4Config) ([]Fig4Point, error) {
	if len(cfg.TrainSizes) == 0 || cfg.TestDocs < 1 {
		return nil, fmt.Errorf("bench: invalid fig4 config")
	}
	maxSize := 0
	for _, n := range cfg.TrainSizes {
		if n > maxSize {
			maxSize = n
		}
	}
	corpus, err := workload.GenReviews(rand.New(rand.NewSource(cfg.Seed)), maxSize, cfg.Corpus)
	if err != nil {
		return nil, err
	}
	test := workload.GenTestReviews(rand.New(rand.NewSource(cfg.Seed+1)), cfg.TestDocs)

	var out []Fig4Point
	for _, n := range cfg.TrainSizes {
		if n > len(corpus) {
			return nil, fmt.Errorf("bench: train size %d exceeds corpus %d", n, len(corpus))
		}
		for _, pl := range []struct {
			name string
			opts textproc.PipelineOptions
		}{
			{"baseline", textproc.BaselineOptions()},
			{"optimized", textproc.OptimizedOptions()},
		} {
			nb, err := textproc.TrainNaiveBayes(corpus[:n], pl.opts)
			if err != nil {
				return nil, err
			}
			out = append(out, Fig4Point{
				TrainDocs:           n,
				PaperEquivalentDocs: n * Fig4Scale,
				Pipeline:            pl.name,
				Accuracy:            textproc.Evaluate(nb, test).Accuracy(),
			})
		}
	}
	return out, nil
}

// AccuracyClaim reproduces the in-text claim "a highly accurate classifier
// that achieves an accuracy ratio of 94% towards unseen data": the
// optimized pipeline trained at the corpus quality threshold.
func AccuracyClaim(seed int64) (float64, error) {
	opts := workload.DefaultReviewOptions()
	corpus, err := workload.GenReviews(rand.New(rand.NewSource(seed)), opts.CleanDocs, opts)
	if err != nil {
		return 0, err
	}
	nb, err := textproc.TrainNaiveBayes(corpus, textproc.OptimizedOptions())
	if err != nil {
		return 0, err
	}
	test := workload.GenTestReviews(rand.New(rand.NewSource(seed+1)), 2000)
	return textproc.Evaluate(nb, test).Accuracy(), nil
}

// DBSCANConfig parameterizes the event-detection experiment: MR-DBSCAN
// agreement with the sequential oracle plus parallel speedup.
type DBSCANConfig struct {
	// Gatherings is the number of planted crowd events.
	Gatherings int
	// PointsPerGathering sizes each event.
	PointsPerGathering int
	// NoisePoints scatter uniformly.
	NoisePoints int
	Partitions  int
	Nodes       []int
	Eps         float64
	MinPts      int
	Seed        int64
}

// DefaultDBSCAN plants 12 gatherings of 200 fixes among noise.
func DefaultDBSCAN() DBSCANConfig {
	return DBSCANConfig{
		Gatherings:         12,
		PointsPerGathering: 200,
		NoisePoints:        1500,
		Partitions:         32,
		Nodes:              []int{4, 8, 16},
		Eps:                120,
		MinPts:             10,
		Seed:               47,
	}
}

// DBSCANRow is one cluster size's measurement.
type DBSCANRow struct {
	Nodes            int
	ClustersFound    int
	ClustersExpected int
	AgreesWithSeq    bool
	SimulatedSeconds float64
}

// RunDBSCAN generates the planted dataset, verifies MR-DBSCAN against the
// sequential oracle and reports simulated makespans per cluster size.
func RunDBSCAN(cfg DBSCANConfig) ([]DBSCANRow, error) {
	if cfg.Gatherings < 1 || cfg.PointsPerGathering < cfg.MinPts {
		return nil, fmt.Errorf("bench: invalid dbscan config")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	bounds := workload.GreeceBounds()
	var pts []geo.Point
	for g := 0; g < cfg.Gatherings; g++ {
		center := geo.Point{
			Lat: bounds.MinLat + rng.Float64()*(bounds.MaxLat-bounds.MinLat),
			Lon: bounds.MinLon + rng.Float64()*(bounds.MaxLon-bounds.MinLon),
		}
		for i := 0; i < cfg.PointsPerGathering; i++ {
			pts = append(pts, geo.Point{
				Lat: center.Lat + geo.MetersToLatDegrees(rng.NormFloat64()*cfg.Eps/4),
				Lon: center.Lon + geo.MetersToLonDegrees(rng.NormFloat64()*cfg.Eps/4, center.Lat),
			})
		}
	}
	for i := 0; i < cfg.NoisePoints; i++ {
		pts = append(pts, geo.Point{
			Lat: bounds.MinLat + rng.Float64()*(bounds.MaxLat-bounds.MinLat),
			Lon: bounds.MinLon + rng.Float64()*(bounds.MaxLon-bounds.MinLon),
		})
	}
	params := dbscan.Params{Eps: cfg.Eps, MinPts: cfg.MinPts}
	seq, err := dbscan.Sequential(pts, params)
	if err != nil {
		return nil, err
	}
	var out []DBSCANRow
	for _, nodes := range cfg.Nodes {
		clus, err := cluster.New(cluster.DefaultConfig(nodes))
		if err != nil {
			return nil, err
		}
		mr, err := dbscan.MRDBSCAN(pts, params, dbscan.MROptions{Partitions: cfg.Partitions, Cluster: clus})
		if err != nil {
			return nil, err
		}
		agrees := mr.NumClusters == seq.NumClusters
		if agrees {
			for i := range pts {
				if (mr.Labels[i] == dbscan.Noise) != (seq.Labels[i] == dbscan.Noise) || mr.Core[i] != seq.Core[i] {
					agrees = false
					break
				}
			}
		}
		out = append(out, DBSCANRow{
			Nodes:            nodes,
			ClustersFound:    mr.NumClusters,
			ClustersExpected: seq.NumClusters,
			AgreesWithSeq:    agrees,
			SimulatedSeconds: mr.SimulatedSeconds,
		})
	}
	return out, nil
}

// ClassifierComparisonRow is one (size, algorithm) accuracy measurement of
// the extension experiment comparing the two Mahout-family algorithms.
type ClassifierComparisonRow struct {
	TrainDocs int
	Algorithm string // "multinomial-nb" or "complement-nb"
	Accuracy  float64
}

// RunClassifierComparison is an extension experiment beyond the paper's
// figures: Mahout ships both multinomial and Complement Naive Bayes, and
// the paper does not say which the deployment used. The comparison runs
// both on the same optimized pipeline across training sizes.
func RunClassifierComparison(sizes []int, testDocs int, seed int64) ([]ClassifierComparisonRow, error) {
	if len(sizes) == 0 || testDocs < 1 {
		return nil, fmt.Errorf("bench: invalid classifier comparison config")
	}
	maxSize := 0
	for _, n := range sizes {
		if n > maxSize {
			maxSize = n
		}
	}
	corpus, err := workload.GenReviews(rand.New(rand.NewSource(seed)), maxSize, workload.DefaultReviewOptions())
	if err != nil {
		return nil, err
	}
	test := workload.GenTestReviews(rand.New(rand.NewSource(seed+1)), testDocs)
	var out []ClassifierComparisonRow
	for _, n := range sizes {
		nb, err := textproc.TrainNaiveBayes(corpus[:n], textproc.OptimizedOptions())
		if err != nil {
			return nil, err
		}
		out = append(out, ClassifierComparisonRow{
			TrainDocs: n, Algorithm: "multinomial-nb",
			Accuracy: textproc.Evaluate(nb, test).Accuracy(),
		})
		cnb, err := textproc.TrainComplementNB(corpus[:n], textproc.OptimizedOptions())
		if err != nil {
			return nil, err
		}
		out = append(out, ClassifierComparisonRow{
			TrainDocs: n, Algorithm: "complement-nb",
			Accuracy: textproc.Evaluate(cnb, test).Accuracy(),
		})
	}
	return out, nil
}
