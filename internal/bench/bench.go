// Package bench implements the experiment harness that regenerates every
// table and figure of the paper's evaluation (§3). Each experiment is a
// pure function from a configuration to structured rows, used by both the
// modissense-bench binary and the repository's testing.B benchmarks.
//
// Workload scale: the paper's dataset is 8 500 POIs, 150 000 users and
// ~170 visits per user (≈25M visits) — too large for an in-memory
// laptop run. The harness keeps the POI catalog and the friend-count axis
// at paper scale and divides the per-user visit volume by VisitScale
// (default 10, i.e. ~17 visits/user). Latency is proportional to
// friends × visits-per-user, so measured latencies are 1/VisitScale of the
// paper's; the rendered tables include the rescaled ("paper-equivalent")
// column for direct comparison. Orderings, linearity and crossovers are
// scale-invariant.
package bench

import (
	"fmt"
	"math/rand"
	"time"

	"modissense/internal/cluster"
	"modissense/internal/kvstore"
	"modissense/internal/model"
	"modissense/internal/query"
	"modissense/internal/relstore"
	"modissense/internal/repos"
	"modissense/internal/workload"
)

// DatasetConfig sizes the Figure 2/3 synthetic dataset.
type DatasetConfig struct {
	// POIs is the catalog size (paper: 8 500).
	POIs int
	// Users is the number of users with visit histories. It must exceed
	// the largest friend count swept (paper population: 150 000; the
	// harness stores histories only for the queryable prefix).
	Users int
	// VisitScale divides the paper's N(170,10) per-user visit volume.
	VisitScale int
	// Regions is the Visits-table region count (HBase pre-splits).
	Regions int
	// Seed pins all randomness.
	Seed int64
	// Schema selects the Visits layout.
	Schema repos.VisitSchema
}

// DefaultDataset mirrors §3.1 at 1/10 visit volume.
func DefaultDataset() DatasetConfig {
	return DatasetConfig{
		POIs:       workload.PaperPOICount,
		Users:      12000,
		VisitScale: 10,
		Regions:    32,
		Seed:       1,
		Schema:     repos.SchemaReplicated,
	}
}

// Validate checks the dataset configuration.
func (c DatasetConfig) Validate() error {
	if c.POIs < 1 || c.Users < 2 || c.VisitScale < 1 || c.Regions < 1 {
		return fmt.Errorf("bench: invalid dataset config %+v", c)
	}
	return nil
}

// Dataset is a materialized Figure 2/3 dataset bound to one cluster size.
type Dataset struct {
	Config DatasetConfig
	POIs   *repos.POIRepo
	Visits *repos.VisitsRepo
	Engine *query.Engine
	// Cluster is the simulated deployment the engine charges.
	Cluster *cluster.Cluster
	// TotalVisits counts the stored visit rows.
	TotalVisits int
}

// BuildDataset generates and loads the dataset onto a simulated cluster of
// the given node count. Generation is deterministic in (cfg.Seed, nodes is
// irrelevant to content — only to placement).
func BuildDataset(cfg DatasetConfig, nodes int) (*Dataset, error) {
	clus, err := cluster.New(cluster.DefaultConfig(nodes))
	if err != nil {
		return nil, err
	}
	return buildDatasetOnCluster(cfg, clus)
}

// buildDatasetOnCluster loads the dataset onto an existing simulated
// cluster (used by ablations that vary the deployment shape).
func buildDatasetOnCluster(cfg DatasetConfig, clus *cluster.Cluster) (*Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nodes := clus.NumNodes()
	rng := rand.New(rand.NewSource(cfg.Seed))
	pois := workload.GenPOIs(rng, cfg.POIs)

	db := relstore.NewDB()
	poiRepo, err := repos.NewPOIRepo(db)
	if err != nil {
		return nil, err
	}
	for _, p := range pois {
		if _, err := poiRepo.Insert(p); err != nil {
			return nil, err
		}
	}
	kvOpts := kvstore.DefaultStoreOptions()
	kvOpts.Seed = cfg.Seed
	visitsRepo, err := repos.NewVisitsRepo(cfg.Schema, int64(cfg.Users), cfg.Regions, nodes, kvOpts)
	if err != nil {
		return nil, err
	}
	start := time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)
	end := time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC)
	mean := workload.PaperVisitMean / float64(cfg.VisitScale)
	sigma := workload.PaperVisitSigma / float64(cfg.VisitScale)
	total := 0
	for uid := int64(1); uid <= int64(cfg.Users); uid++ {
		userRng := rand.New(rand.NewSource(cfg.Seed*1_000_003 + uid))
		for _, v := range workload.GenVisitsForUser(userRng, uid, pois, start, end, mean, sigma) {
			if err := visitsRepo.Store(v); err != nil {
				return nil, err
			}
			total++
		}
	}
	engine, err := query.NewEngine(visitsRepo, poiRepo, clus)
	if err != nil {
		return nil, err
	}
	return &Dataset{
		Config:      cfg,
		POIs:        poiRepo,
		Visits:      visitsRepo,
		Engine:      engine,
		Cluster:     clus,
		TotalVisits: total,
	}, nil
}

// Window returns the dataset's full visit time window.
func (d *Dataset) Window() (int64, int64) {
	return model.Millis(time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)),
		model.Millis(time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC))
}

// FriendSample draws f distinct user ids uniformly ("friends for each
// query are picked randomly in a uniform manner").
func (d *Dataset) FriendSample(rng *rand.Rand, f int) []int64 {
	return workload.GenFriendList(rng, 0, d.Config.Users, f)
}

// PaperEquivalent rescales a measured latency to the paper's visit volume.
func (d *Dataset) PaperEquivalent(latency float64) float64 {
	return latency * float64(d.Config.VisitScale)
}
