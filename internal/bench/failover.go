package bench

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"modissense/internal/faultinject"
	"modissense/internal/kvstore"
	"modissense/internal/model"
	"modissense/internal/query"
	"modissense/internal/repos"
)

// FailoverConfig parameterizes the write-path fault-tolerance experiment:
// concurrent batched check-in writers and scatter-query readers run against
// a replicated, failover-enabled dataset while the node owning the most
// region primaries is crashed (reads, writes and WAL shipments all fail).
// The failure detector must down the node, promote the most-caught-up
// replicas, and the run is gated on zero acked-write loss, a bounded write
// outage, epoch-fenced zombie writes and full topology convergence.
type FailoverConfig struct {
	Dataset DatasetConfig
	Nodes   int
	// Replicas is the read-replica count per region (>= 1: promotion
	// needs a survivor).
	Replicas int
	// Writers concurrent check-in writers each land AcksPerWriter
	// acknowledged visits, retrying through the outage. At least two
	// writers are pinned to users homed on the victim's regions so the
	// kill demonstrably interrupts acknowledged traffic.
	Writers       int
	AcksPerWriter int
	// SentinelEvery records every Nth acknowledged visit per writer as a
	// sentinel; after the cutover every sentinel must be readable (the
	// zero-acked-write-loss gate).
	SentinelEvery int
	// KillAfterAcks delays the crash until this many total acknowledged
	// writes landed, so the kill hits a warm, mid-flight ingest stream.
	KillAfterAcks int
	// Readers concurrent query clients run personalized scatters with
	// Friends-sized friend lists until the writers finish.
	Readers int
	Friends int
	// WindowBudget bounds the longest per-writer write-unavailability
	// window (first failed ack to the next success).
	WindowBudget time.Duration
	Seed         int64
}

// DefaultFailover sizes the experiment so the kill lands mid-ingest and the
// whole run stays under a minute on a laptop.
func DefaultFailover() FailoverConfig {
	ds := DefaultDataset()
	ds.Users = 3000
	ds.Regions = 16
	return FailoverConfig{
		Dataset:       ds,
		Nodes:         4,
		Replicas:      2,
		Writers:       4,
		AcksPerWriter: 2500,
		SentinelEvery: 200,
		KillAfterAcks: 2000,
		Readers:       2,
		Friends:       400,
		WindowBudget:  2 * time.Second,
		Seed:          61,
	}
}

// FailoverResult is the experiment outcome, JSON-tagged for
// BENCH_failover.json.
type FailoverResult struct {
	// AckedWrites counts acknowledged visits across all writers;
	// WriteRetries counts the failed attempts retried through the outage.
	AckedWrites  int `json:"acked_writes"`
	WriteRetries int `json:"write_retries"`
	// Sentinels is the number of acked check-ins probed after the
	// cutover; SentinelsMissing is how many were unreadable (must be 0).
	Sentinels        int `json:"sentinels"`
	SentinelsMissing int `json:"sentinels_missing"`
	// UnavailabilityMillis is the longest single writer's write outage.
	UnavailabilityMillis float64 `json:"write_unavailability_ms"`
	WindowBudgetMillis   float64 `json:"window_budget_ms"`
	VictimNode           int     `json:"victim_node"`
	// PrimariesMoved counts the victim's regions whose primary was
	// promoted away; VictimPrimaries is how many it owned at the kill.
	VictimPrimaries int `json:"victim_primaries"`
	PrimariesMoved  int `json:"primaries_moved"`
	// EpochBefore/EpochAfter bracket the monotonic fencing epoch.
	EpochBefore uint64 `json:"epoch_before"`
	EpochAfter  uint64 `json:"epoch_after"`
	// ZombieFenced reports the old primary's stale-epoch write was
	// rejected with ErrEpochFenced; ZombieVisible reports whether its row
	// leaked into the store (must not).
	ZombieFenced  bool `json:"zombie_fenced"`
	ZombieVisible bool `json:"zombie_visible"`
	// Query tallies over the concurrent readers; degraded answers are
	// non-5xx and count toward QueriesOK.
	QueriesOK        int     `json:"queries_ok"`
	QueriesDegraded  int     `json:"queries_degraded"`
	QueryErrors      int     `json:"query_errors"`
	QuerySuccessRate float64 `json:"query_success_rate"`
	// ReplicasConverged reports every region ended with the configured
	// replica factor and no copy on the downed node.
	ReplicasConverged bool `json:"replicas_converged"`
	// RejoinOK reports the victim re-entered as a catching-up replica
	// (never a primary) once the injected faults were lifted.
	RejoinOK bool `json:"rejoin_ok"`
	// GoroutinesBefore/GoroutinesAfter bracket the run for leak gating.
	GoroutinesBefore int `json:"goroutines_before"`
	GoroutinesAfter  int `json:"goroutines_after"`
}

// failoverSentinel is one acked check-in the loss gate probes afterwards.
type failoverSentinel struct {
	user int64
	time int64
}

// RunFailover executes the experiment: build, kill, converge, verify.
func RunFailover(cfg FailoverConfig) (*FailoverResult, error) {
	if cfg.Replicas < 1 {
		return nil, fmt.Errorf("bench: failover experiment needs replicas")
	}
	if cfg.Nodes < 3 {
		return nil, fmt.Errorf("bench: failover experiment needs >= 3 nodes")
	}
	if cfg.Writers < 1 || cfg.AcksPerWriter < 1 || cfg.SentinelEvery < 1 {
		return nil, fmt.Errorf("bench: failover experiment needs positive write load")
	}
	if cfg.WindowBudget <= 0 {
		return nil, fmt.Errorf("bench: failover experiment needs a window budget")
	}
	ds, err := BuildDataset(cfg.Dataset, cfg.Nodes)
	if err != nil {
		return nil, err
	}
	tbl := ds.Visits.Table()
	if err := tbl.EnableReplication(cfg.Replicas, 0); err != nil {
		return nil, err
	}
	if err := tbl.CatchUpReplication(); err != nil {
		return nil, err
	}
	if err := tbl.EnableFailover(kvstore.FailoverConfig{}); err != nil {
		return nil, err
	}
	pol := query.DefaultReadPolicy()
	pol.JitterSeed = cfg.Seed
	ds.Engine.SetReadPolicy(&pol)

	res := &FailoverResult{WindowBudgetMillis: float64(cfg.WindowBudget.Milliseconds())}
	res.GoroutinesBefore = runtime.NumGoroutine()

	// The victim is the node owning the most region primaries: killing it
	// interrupts the largest slice of the write traffic.
	res.VictimNode = busiestPrimary(tbl)
	victimRegions := map[int]bool{}
	var zombieRow string
	var zombieEpoch uint64
	for _, r := range tbl.Regions() {
		if r.PrimaryNode() != res.VictimNode {
			continue
		}
		victimRegions[r.ID] = true
		if zombieRow == "" {
			// A row inside the region: the stale-epoch write the fencing
			// gate replays after the promotion.
			zombieRow = r.StartKey + "\x00zombie"
			zombieEpoch = r.Epoch()
		}
		if e := r.Epoch(); e > res.EpochBefore {
			res.EpochBefore = e
		}
	}
	res.VictimPrimaries = len(victimRegions)
	if res.VictimPrimaries == 0 {
		return nil, fmt.Errorf("bench: victim node %d owns no primaries", res.VictimNode)
	}

	// Pin the first two writers to users homed on the victim's regions so
	// the kill demonstrably interrupts acked traffic; the rest write to
	// users homed elsewhere and must ride through undisturbed.
	uids, err := writerUsers(ds, cfg, victimRegions)
	if err != nil {
		return nil, err
	}

	var (
		acked   atomic.Int64
		retries atomic.Int64
		// maxOutageNanos is the longest writer-observed window from the
		// first failed ack to the next success.
		maxOutageNanos atomic.Int64
		sentinelMu     sync.Mutex
		sentinels      []failoverSentinel
	)
	_, winTo := ds.Window()
	baseMillis := winTo + 1

	var writers sync.WaitGroup
	var writeErr atomic.Value
	for wi := 0; wi < cfg.Writers; wi++ {
		writers.Add(1)
		go func(wi int) {
			defer writers.Done()
			uid := uids[wi]
			var outageStart time.Time
			for i := 0; i < cfg.AcksPerWriter; i++ {
				v := model.Visit{
					UserID:  uid,
					Time:    baseMillis + int64(wi)*int64(cfg.AcksPerWriter+1) + int64(i),
					Grade:   float64(i%5 + 1),
					Network: "facebook",
					POI:     model.POI{ID: int64(i%cfg.Dataset.POIs + 1)},
				}
				for {
					err := ds.Visits.Store(v)
					if err == nil {
						break
					}
					if errors.Is(err, kvstore.ErrEpochFenced) {
						// A fenced ack-path write means the fencing check
						// misfired: surface it, the gate must fail.
						writeErr.CompareAndSwap(nil, err)
						return
					}
					retries.Add(1)
					if outageStart.IsZero() {
						outageStart = time.Now()
					}
					time.Sleep(500 * time.Microsecond)
				}
				if !outageStart.IsZero() {
					w := time.Since(outageStart).Nanoseconds()
					if w > maxOutageNanos.Load() {
						maxOutageNanos.Store(w)
					}
					outageStart = time.Time{}
				}
				acked.Add(1)
				if (i+1)%cfg.SentinelEvery == 0 {
					sentinelMu.Lock()
					sentinels = append(sentinels, failoverSentinel{user: uid, time: v.Time})
					sentinelMu.Unlock()
				}
			}
		}(wi)
	}

	// Readers: personalized scatters until the writers finish. Degraded
	// answers are non-5xx; only errors count against the success gate.
	stopReaders := make(chan struct{})
	var readers sync.WaitGroup
	var qOK, qDeg, qErr atomic.Int64
	from, to := ds.Window()
	for ri := 0; ri < cfg.Readers; ri++ {
		readers.Add(1)
		go func(ri int) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(ri)*7919))
			for {
				select {
				case <-stopReaders:
					return
				default:
				}
				spec := query.Spec{
					FriendIDs:  ds.FriendSample(rng, cfg.Friends),
					FromMillis: from,
					ToMillis:   to,
					OrderBy:    query.ByInterest,
					Limit:      10,
				}
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				r, err := ds.Engine.Run(ctx, spec)
				cancel()
				switch {
				case err == nil:
					qOK.Add(1)
					if r.Degraded {
						qDeg.Add(1)
					}
				default:
					qErr.Add(1)
				}
			}
		}(ri)
	}

	// The kill: once the ingest is warm, every read attempt, write
	// admission and WAL shipment touching the victim crashes. Writer
	// retries feed the failure detector until it downs the node and the
	// promotion cuts the affected regions over.
	for acked.Load() < int64(cfg.KillAfterAcks) {
		time.Sleep(time.Millisecond)
	}
	crash := func(kind faultinject.OpKind) faultinject.Rule {
		return faultinject.Rule{
			Fault: faultinject.Crash, Op: kind, Node: res.VictimNode,
			Region: faultinject.Any, Replica: faultinject.Any, Prob: 1,
		}
	}
	inj := faultinject.New(faultinject.Schedule{
		Seed:  cfg.Seed,
		Rules: []faultinject.Rule{crash(faultinject.OpRead), crash(faultinject.OpPut), crash(faultinject.OpShip)},
	})
	tbl.SetFaultInjector(inj)
	ds.Engine.SetFaultInjector(inj)

	writers.Wait()
	close(stopReaders)
	readers.Wait()
	if err, _ := writeErr.Load().(error); err != nil {
		return nil, fmt.Errorf("bench: acked-write path fenced: %w", err)
	}

	wctx, wcancel := context.WithTimeout(context.Background(), 15*time.Second)
	err = tbl.WaitFailover(wctx)
	wcancel()
	if err != nil {
		return nil, fmt.Errorf("bench: failover did not converge: %w", err)
	}

	res.AckedWrites = int(acked.Load())
	res.WriteRetries = int(retries.Load())
	res.UnavailabilityMillis = float64(maxOutageNanos.Load()) / 1e6
	res.QueriesOK = int(qOK.Load())
	res.QueriesDegraded = int(qDeg.Load())
	res.QueryErrors = int(qErr.Load())
	if total := res.QueriesOK + res.QueryErrors; total > 0 {
		res.QuerySuccessRate = float64(res.QueriesOK) / float64(total)
	}

	// Topology convergence: every victim primary promoted away, every
	// region back at full replica factor with no copy on the dead node.
	res.ReplicasConverged = true
	for _, r := range tbl.Regions() {
		if victimRegions[r.ID] && r.PrimaryNode() != res.VictimNode {
			res.PrimariesMoved++
		}
		if r.PrimaryNode() == res.VictimNode || r.Replicas() != cfg.Replicas {
			res.ReplicasConverged = false
		}
		for i := 1; i <= r.Replicas(); i++ {
			if r.ReadView(i).NodeID == res.VictimNode {
				res.ReplicasConverged = false
			}
		}
		if e := r.Epoch(); e > res.EpochAfter {
			res.EpochAfter = e
		}
	}

	// Zombie fencing: the deposed primary retries a write it had in
	// flight, carrying its pre-promotion epoch. It must be rejected before
	// the WAL and must not become readable.
	zerr := tbl.PutFenced(zombieRow, "z", baseMillis, []byte("zombie"), zombieEpoch)
	res.ZombieFenced = errors.Is(zerr, kvstore.ErrEpochFenced)
	if row, err := tbl.Get(zombieRow); err == nil {
		_, res.ZombieVisible = row.Get("z")
	}

	// Zero acked-write loss: every sentinel acked before, during or after
	// the outage must be readable from the promoted primaries.
	res.Sentinels = len(sentinels)
	for _, s := range sentinels {
		found := false
		err := ds.Visits.ScanUser(s.user, s.time, s.time, func(v model.Visit) bool {
			if v.Time == s.time {
				found = true
				return false
			}
			return true
		})
		if err != nil {
			return nil, err
		}
		if !found {
			res.SentinelsMissing++
		}
	}

	// Rejoin: lift the faults (the node was "fixed"), re-enter it as a
	// catching-up replica and verify it never comes back as a primary.
	tbl.SetFaultInjector(nil)
	ds.Engine.SetFaultInjector(nil)
	if err := tbl.RejoinNode(res.VictimNode); err != nil {
		return nil, err
	}
	if err := tbl.CatchUpReplication(); err != nil {
		return nil, err
	}
	res.RejoinOK = tbl.NodeHealth(res.VictimNode) == kvstore.NodeHealthy
	for _, r := range tbl.Regions() {
		if r.PrimaryNode() == res.VictimNode {
			res.RejoinOK = false
		}
	}

	ds.Engine.SetReadPolicy(nil)
	// Let promotion goroutines and cancelled read attempts drain before
	// the leak measurement.
	time.Sleep(100 * time.Millisecond)
	res.GoroutinesAfter = runtime.NumGoroutine()
	return res, nil
}

// busiestPrimary returns the node owning the most region primaries.
func busiestPrimary(t *kvstore.Table) int {
	counts := map[int]int{}
	for _, r := range t.Regions() {
		counts[r.PrimaryNode()]++
	}
	best, bestN := 0, -1
	for node, n := range counts {
		if n > bestN || (n == bestN && node < best) {
			best, bestN = node, n
		}
	}
	return best
}

// writerUsers assigns one user per writer: the first two (when possible)
// homed on the victim's regions, the rest elsewhere, so the kill interrupts
// some writers while others ride through.
func writerUsers(ds *Dataset, cfg FailoverConfig, victimRegions map[int]bool) ([]int64, error) {
	var onVictim, offVictim []int64
	regions := ds.Visits.Table().Regions()
	_, to := ds.Window()
	for uid := int64(1); uid <= int64(cfg.Dataset.Users); uid++ {
		start, _ := repos.VisitScanBounds(uid, to, to)
		for _, r := range regions {
			if !r.Contains(start) {
				continue
			}
			if victimRegions[r.ID] {
				onVictim = append(onVictim, uid)
			} else {
				offVictim = append(offVictim, uid)
			}
			break
		}
		if len(onVictim) >= cfg.Writers && len(offVictim) >= cfg.Writers {
			break
		}
	}
	uids := make([]int64, cfg.Writers)
	vi, oi := 0, 0
	for wi := range uids {
		// Writers 0 and 1 take victim-homed users when available.
		if wi < 2 && vi < len(onVictim) {
			uids[wi] = onVictim[vi]
			vi++
			continue
		}
		if oi < len(offVictim) {
			uids[wi] = offVictim[oi]
			oi++
			continue
		}
		if vi < len(onVictim) {
			uids[wi] = onVictim[vi]
			vi++
			continue
		}
		return nil, fmt.Errorf("bench: not enough users to assign %d writers", cfg.Writers)
	}
	if vi == 0 {
		return nil, fmt.Errorf("bench: no user homed on victim regions")
	}
	return uids, nil
}
