package bench

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"modissense/internal/cluster"
	"modissense/internal/geo"
	"modissense/internal/query"
	"modissense/internal/repos"
	"modissense/internal/workload"
)

// workloadFriends draws n distinct user ids from [1, users].
func workloadFriends(rng *rand.Rand, users, n int) []int64 {
	return workload.GenFriendList(rng, 0, users, n)
}

// athensBox is the selective Athens-area query box used by the ablations.
func athensBox() geo.Rect {
	return geo.RectAround(geo.Point{Lat: 37.9838, Lon: 23.7275}, 30000)
}

// Fig2Config parameterizes the Figure 2 experiment: single-query latency
// vs number of SN friends across cluster sizes.
type Fig2Config struct {
	Dataset DatasetConfig
	// FriendCounts is the x-axis (paper: 500–9 500 step 1 500).
	FriendCounts []int
	// Nodes are the cluster sizes (paper: 4, 8, 16).
	Nodes []int
	// Repetitions averages each point (paper: 10).
	Repetitions int
	Seed        int64
}

// DefaultFig2 mirrors the paper's sweep.
func DefaultFig2() Fig2Config {
	return Fig2Config{
		Dataset:      DefaultDataset(),
		FriendCounts: []int{500, 2000, 3500, 5000, 6500, 8000, 9500},
		Nodes:        []int{4, 8, 16},
		Repetitions:  3,
		Seed:         42,
	}
}

// Fig2Point is one measured point of Figure 2. The JSON tags define the
// machine-readable series format cmd/modissense-bench emits (BENCH_fig2.json).
type Fig2Point struct {
	Nodes          int     `json:"nodes"`
	Friends        int     `json:"friends"`
	LatencySeconds float64 `json:"latency_seconds"`
	// PaperEquivalentSeconds rescales to the paper's visit volume.
	PaperEquivalentSeconds float64 `json:"paper_equivalent_seconds"`
	// RowsScanned / BytesMerged are real work counters from the execution
	// engine, averaged over the repetitions: how much the read path actually
	// touched to serve the point.
	RowsScanned int64 `json:"rows_scanned"`
	BytesMerged int64 `json:"bytes_merged"`
}

// RunFig2 executes the sweep. Each (nodes) series shares one dataset; the
// queries run one at a time, as in the paper's first experiment.
func RunFig2(cfg Fig2Config) ([]Fig2Point, error) {
	if cfg.Repetitions < 1 {
		return nil, fmt.Errorf("bench: repetitions must be >= 1")
	}
	var out []Fig2Point
	for _, nodes := range cfg.Nodes {
		ds, err := BuildDataset(cfg.Dataset, nodes)
		if err != nil {
			return nil, err
		}
		from, to := ds.Window()
		rng := rand.New(rand.NewSource(cfg.Seed))
		for _, friends := range cfg.FriendCounts {
			if friends >= cfg.Dataset.Users {
				return nil, fmt.Errorf("bench: friend count %d exceeds user population %d", friends, cfg.Dataset.Users)
			}
			var sum float64
			var rows, bytes int64
			for rep := 0; rep < cfg.Repetitions; rep++ {
				spec := query.Spec{
					FriendIDs:  ds.FriendSample(rng, friends),
					FromMillis: from,
					ToMillis:   to,
					OrderBy:    query.ByInterest,
					Limit:      10,
				}
				res, err := ds.Engine.Run(context.Background(), spec)
				if err != nil {
					return nil, err
				}
				sum += res.LatencySeconds
				rows += res.Exec.RowsScanned
				bytes += res.Exec.BytesMerged
			}
			reps := int64(cfg.Repetitions)
			avg := sum / float64(cfg.Repetitions)
			out = append(out, Fig2Point{
				Nodes:                  nodes,
				Friends:                friends,
				LatencySeconds:         avg,
				PaperEquivalentSeconds: ds.PaperEquivalent(avg),
				RowsScanned:            rows / reps,
				BytesMerged:            bytes / reps,
			})
		}
	}
	return out, nil
}

// Fig3Config parameterizes Figure 3: average latency of concurrent queries.
type Fig3Config struct {
	Dataset DatasetConfig
	// Concurrency is the x-axis (paper: 30–50 step 5).
	Concurrency []int
	Nodes       []int
	// FriendsPerQuery is fixed at 6 000 in the paper.
	FriendsPerQuery int
	Seed            int64
}

// DefaultFig3 mirrors the paper's sweep.
func DefaultFig3() Fig3Config {
	return Fig3Config{
		Dataset:         DefaultDataset(),
		Concurrency:     []int{30, 35, 40, 45, 50},
		Nodes:           []int{4, 8, 16},
		FriendsPerQuery: 6000,
		Seed:            43,
	}
}

// Fig3Point is one measured point of Figure 3, JSON-tagged for the
// BENCH_fig3.json series file cmd/modissense-bench emits.
type Fig3Point struct {
	Nodes                  int     `json:"nodes"`
	Concurrent             int     `json:"concurrent"`
	AvgLatencySeconds      float64 `json:"avg_latency_seconds"`
	PaperEquivalentSeconds float64 `json:"paper_equivalent_seconds"`
	// RowsScanned / BytesMerged total the real read-path work across the
	// whole concurrent batch.
	RowsScanned int64 `json:"rows_scanned"`
	BytesMerged int64 `json:"bytes_merged"`
}

// RunFig3 executes the concurrency sweep.
func RunFig3(cfg Fig3Config) ([]Fig3Point, error) {
	if cfg.FriendsPerQuery < 1 {
		return nil, fmt.Errorf("bench: friends per query must be positive")
	}
	var out []Fig3Point
	for _, nodes := range cfg.Nodes {
		ds, err := BuildDataset(cfg.Dataset, nodes)
		if err != nil {
			return nil, err
		}
		from, to := ds.Window()
		rng := rand.New(rand.NewSource(cfg.Seed))
		for _, m := range cfg.Concurrency {
			specs := make([]query.Spec, m)
			for i := range specs {
				specs[i] = query.Spec{
					FriendIDs:  ds.FriendSample(rng, cfg.FriendsPerQuery),
					FromMillis: from,
					ToMillis:   to,
					OrderBy:    query.ByInterest,
					Limit:      10,
				}
			}
			results, err := ds.Engine.RunConcurrent(context.Background(), specs)
			if err != nil {
				return nil, err
			}
			var sum float64
			var rows, bytes int64
			for _, r := range results {
				sum += r.LatencySeconds
				rows += r.Exec.RowsScanned
				bytes += r.Exec.BytesMerged
			}
			avg := sum / float64(len(results))
			out = append(out, Fig3Point{
				Nodes:                  nodes,
				Concurrent:             m,
				AvgLatencySeconds:      avg,
				PaperEquivalentSeconds: ds.PaperEquivalent(avg),
				RowsScanned:            rows,
				BytesMerged:            bytes,
			})
		}
	}
	return out, nil
}

// SchemaAblationConfig parameterizes the replicated-vs-normalized Visits
// schema comparison (the design decision of §2.1).
type SchemaAblationConfig struct {
	Dataset DatasetConfig
	Nodes   int
	Friends int
	Seed    int64
}

// DefaultSchemaAblation uses a smaller population (the comparison needs
// two full datasets in memory).
func DefaultSchemaAblation() SchemaAblationConfig {
	ds := DefaultDataset()
	ds.Users = 4000
	return SchemaAblationConfig{Dataset: ds, Nodes: 8, Friends: 2000, Seed: 44}
}

// SchemaAblationRow is one schema's measurement.
type SchemaAblationRow struct {
	Schema          string
	LatencySeconds  float64
	CandidatesMoved int
	ResultPOIs      int
}

// RunSchemaAblation measures both schemas on the same query (a bounded
// bounding box plus keyword, where the replicated schema's region-side
// filtering pays off).
func RunSchemaAblation(cfg SchemaAblationConfig) ([]SchemaAblationRow, error) {
	var out []SchemaAblationRow
	rngSeed := rand.New(rand.NewSource(cfg.Seed))
	friends := workloadFriends(rngSeed, cfg.Dataset.Users, cfg.Friends)
	for _, schema := range []repos.VisitSchema{repos.SchemaReplicated, repos.SchemaNormalized} {
		dcfg := cfg.Dataset
		dcfg.Schema = schema
		ds, err := BuildDataset(dcfg, cfg.Nodes)
		if err != nil {
			return nil, err
		}
		from, to := ds.Window()
		// Athens-area restaurants: a selective query.
		box := athensBox()
		res, err := ds.Engine.Run(context.Background(), query.Spec{
			BBox:       &box,
			Keyword:    "restaurant",
			FriendIDs:  friends,
			FromMillis: from,
			ToMillis:   to,
			OrderBy:    query.ByInterest,
			Limit:      10,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, SchemaAblationRow{
			Schema:          schema.String(),
			LatencySeconds:  res.LatencySeconds,
			CandidatesMoved: res.Work.CandidatePOIs,
			ResultPOIs:      len(res.POIs),
		})
	}
	return out, nil
}

// RegionAblationConfig parameterizes the regions-vs-parallelism experiment
// ("increasing the regions number ... achieves higher degree of
// parallelism within a single query").
type RegionAblationConfig struct {
	Dataset      DatasetConfig
	Nodes        int
	Friends      int
	RegionCounts []int
	Seed         int64
}

// DefaultRegionAblation sweeps region counts on a fixed 4-node cluster.
func DefaultRegionAblation() RegionAblationConfig {
	ds := DefaultDataset()
	ds.Users = 4000
	return RegionAblationConfig{
		Dataset:      ds,
		Nodes:        4,
		Friends:      2000,
		RegionCounts: []int{4, 8, 16, 32, 64},
		Seed:         45,
	}
}

// RegionAblationRow is one region count's measurement.
type RegionAblationRow struct {
	Regions        int
	LatencySeconds float64
}

// RunRegionAblation measures single-query latency across region counts.
func RunRegionAblation(cfg RegionAblationConfig) ([]RegionAblationRow, error) {
	var out []RegionAblationRow
	rng := rand.New(rand.NewSource(cfg.Seed))
	friends := workloadFriends(rng, cfg.Dataset.Users, cfg.Friends)
	for _, regions := range cfg.RegionCounts {
		dcfg := cfg.Dataset
		dcfg.Regions = regions
		ds, err := BuildDataset(dcfg, cfg.Nodes)
		if err != nil {
			return nil, err
		}
		from, to := ds.Window()
		res, err := ds.Engine.Run(context.Background(), query.Spec{
			FriendIDs:  friends,
			FromMillis: from,
			ToMillis:   to,
			OrderBy:    query.ByInterest,
			Limit:      10,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, RegionAblationRow{Regions: regions, LatencySeconds: res.LatencySeconds})
	}
	return out, nil
}

// RenderTable formats rows of (label → value) pairs as a fixed-width text
// table, one row per entry, ordered as given.
func RenderTable(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return sb.String()
}

// SortFig2 orders points by (nodes, friends) for stable rendering.
func SortFig2(points []Fig2Point) {
	sort.Slice(points, func(i, j int) bool {
		if points[i].Nodes != points[j].Nodes {
			return points[i].Nodes < points[j].Nodes
		}
		return points[i].Friends < points[j].Friends
	})
}

// SortFig3 orders points by (nodes, concurrency).
func SortFig3(points []Fig3Point) {
	sort.Slice(points, func(i, j int) bool {
		if points[i].Nodes != points[j].Nodes {
			return points[i].Nodes < points[j].Nodes
		}
		return points[i].Concurrent < points[j].Concurrent
	})
}

// WebServerAblationConfig parameterizes the web-farm sizing experiment
// behind §3.1's closing claim: "two 4-core web servers ... are more than
// enough to avoid such bottlenecks".
type WebServerAblationConfig struct {
	Dataset         DatasetConfig
	Nodes           int
	Concurrent      int
	FriendsPerQuery int
	WebServers      []int
	Seed            int64
}

// DefaultWebServerAblation stresses the farm with 40 concurrent queries.
func DefaultWebServerAblation() WebServerAblationConfig {
	ds := DefaultDataset()
	ds.Users = 4000
	return WebServerAblationConfig{
		Dataset:         ds,
		Nodes:           8,
		Concurrent:      40,
		FriendsPerQuery: 2000,
		WebServers:      []int{1, 2, 4},
		Seed:            49,
	}
}

// WebServerAblationRow is one farm size's measurement.
type WebServerAblationRow struct {
	WebServers        int
	AvgLatencySeconds float64
}

// RunWebServerAblation measures concurrent-query latency across web-farm
// sizes; the claim holds if going beyond two servers yields no meaningful
// improvement.
func RunWebServerAblation(cfg WebServerAblationConfig) ([]WebServerAblationRow, error) {
	var out []WebServerAblationRow
	for _, web := range cfg.WebServers {
		ccfg := cluster.DefaultConfig(cfg.Nodes)
		ccfg.WebServers = web
		clus, err := cluster.New(ccfg)
		if err != nil {
			return nil, err
		}
		ds, err := buildDatasetOnCluster(cfg.Dataset, clus)
		if err != nil {
			return nil, err
		}
		from, to := ds.Window()
		rng := rand.New(rand.NewSource(cfg.Seed))
		specs := make([]query.Spec, cfg.Concurrent)
		for i := range specs {
			specs[i] = query.Spec{
				FriendIDs:  ds.FriendSample(rng, cfg.FriendsPerQuery),
				FromMillis: from,
				ToMillis:   to,
				OrderBy:    query.ByInterest,
				Limit:      10,
			}
		}
		results, err := ds.Engine.RunConcurrent(context.Background(), specs)
		if err != nil {
			return nil, err
		}
		var sum float64
		for _, r := range results {
			sum += r.LatencySeconds
		}
		out = append(out, WebServerAblationRow{
			WebServers:        web,
			AvgLatencySeconds: sum / float64(len(results)),
		})
	}
	return out, nil
}

// TopKAblationConfig parameterizes the exact-vs-approximate merge
// experiment: per-region top-K truncation against the paper's exact merge.
type TopKAblationConfig struct {
	Dataset DatasetConfig
	Nodes   int
	Friends int
	// Ks are the per-region truncations to sweep (0 = exact).
	Ks    []int
	Limit int
	Seed  int64
}

// DefaultTopKAblation sweeps K ∈ {exact, 100, 30, 10}.
func DefaultTopKAblation() TopKAblationConfig {
	ds := DefaultDataset()
	ds.Users = 4000
	return TopKAblationConfig{
		Dataset: ds,
		Nodes:   8,
		Friends: 2000,
		Ks:      []int{0, 2000, 1000, 300, 100, 30},
		Limit:   10,
		Seed:    50,
	}
}

// TopKAblationRow is one truncation level's measurement.
type TopKAblationRow struct {
	RegionTopK      int // 0 = exact
	LatencySeconds  float64
	CandidatesMoved int
	// Recall is |approx∩exact| / |exact| over the final top-Limit lists
	// (1.0 for the exact run by definition).
	Recall float64
}

// RunTopKAblation measures latency, shipped candidates and recall across
// truncation levels on the same hotness query.
func RunTopKAblation(cfg TopKAblationConfig) ([]TopKAblationRow, error) {
	if len(cfg.Ks) == 0 || cfg.Limit < 1 {
		return nil, fmt.Errorf("bench: invalid topk config")
	}
	ds, err := BuildDataset(cfg.Dataset, cfg.Nodes)
	if err != nil {
		return nil, err
	}
	from, to := ds.Window()
	rng := rand.New(rand.NewSource(cfg.Seed))
	friends := workloadFriends(rng, cfg.Dataset.Users, cfg.Friends)
	base := query.Spec{
		FriendIDs:  friends,
		FromMillis: from,
		ToMillis:   to,
		OrderBy:    query.ByHotness,
		Limit:      cfg.Limit,
	}
	exact, err := ds.Engine.Run(context.Background(), base)
	if err != nil {
		return nil, err
	}
	exactIDs := map[int64]bool{}
	for _, s := range exact.POIs {
		exactIDs[s.POI.ID] = true
	}
	var out []TopKAblationRow
	for _, k := range cfg.Ks {
		spec := base
		spec.RegionTopK = k
		res, err := ds.Engine.Run(context.Background(), spec)
		if err != nil {
			return nil, err
		}
		hits := 0
		for _, s := range res.POIs {
			if exactIDs[s.POI.ID] {
				hits++
			}
		}
		recall := 1.0
		if len(exact.POIs) > 0 {
			recall = float64(hits) / float64(len(exact.POIs))
		}
		out = append(out, TopKAblationRow{
			RegionTopK:      k,
			LatencySeconds:  res.LatencySeconds,
			CandidatesMoved: res.Work.CandidatePOIs,
			Recall:          recall,
		})
	}
	return out, nil
}
