package bench

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"modissense/client"
	"modissense/internal/core"
	"modissense/internal/geo"
	"modissense/internal/pubsub"
)

// PubSubConfig parameterizes the continuous-query experiment. Phase A
// measures the incremental matcher in isolation: a registry loaded with
// standing spatio-textual subscriptions absorbs a synthetic check-in
// stream and we gate the publish throughput. Phase B runs the whole
// delivery path over HTTP: concurrent batched check-in writers, long-poll
// consumers measuring push-to-notify latency, and one deliberately
// abandoned subscription whose bounded queue must overflow into counted
// drops rather than memory.
type PubSubConfig struct {
	// Subscriptions standing queries are registered on a spatial grid,
	// each with KeywordsPerSub keywords from a small vocabulary.
	Subscriptions  int
	KeywordsPerSub int
	// Publishes check-ins are pushed straight through Registry.Publish.
	Publishes int
	// MatchMinPerSec gates phase A's publish throughput.
	MatchMinPerSec float64

	// POIs/Population size the platform behind the end-to-end phase.
	POIs       int
	Population int
	// Writers concurrent clients each push BatchesPerWriter batches of
	// BatchSize check-ins while Subscribers long-poll their standing
	// queries.
	Writers          int
	BatchesPerWriter int
	BatchSize        int
	Subscribers      int
	// QueueCap bounds each subscription's event buffer; the abandoned
	// subscription must overflow it.
	QueueCap int
	// NotifyP99Budget gates the push-to-delivery latency tail.
	NotifyP99Budget time.Duration
	Seed            int64
}

// DefaultPubSub sizes the experiment so the matcher sees thousands of
// standing queries and the delivery phase forces drop-oldest on the
// abandoned subscription, while the whole run stays in seconds.
func DefaultPubSub() PubSubConfig {
	return PubSubConfig{
		Subscriptions:    4000,
		KeywordsPerSub:   2,
		Publishes:        20000,
		MatchMinPerSec:   2000,
		POIs:             300,
		Population:       500,
		Writers:          4,
		BatchesPerWriter: 12,
		BatchSize:        25,
		Subscribers:      4,
		QueueCap:         64,
		NotifyP99Budget:  2 * time.Second,
		Seed:             113,
	}
}

// PubSubResult is the full experiment outcome, JSON-tagged for
// BENCH_pubsub.json.
type PubSubResult struct {
	// Phase A: matcher in isolation.
	Subscriptions  int     `json:"subscriptions"`
	Publishes      int     `json:"publishes"`
	Matches        int64   `json:"matches"`
	MatchSeconds   float64 `json:"match_seconds"`
	PublishPerSec  float64 `json:"publish_per_sec"`
	MatchAvgMicros float64 `json:"match_avg_us"`

	// Phase B: end-to-end delivery under concurrent ingest.
	CheckinsPushed  int     `json:"checkins_pushed"`
	WriteErrors     int     `json:"write_errors"`
	EventsDelivered int     `json:"events_delivered"`
	PollErrors      int     `json:"poll_errors"`
	NotifyP50Millis float64 `json:"notify_p50_ms"`
	NotifyP99Millis float64 `json:"notify_p99_ms"`
	// SlowSubDropped counts the abandoned subscription's overflow;
	// ObsDropped is the same overflow as the obs counter saw it.
	SlowSubDropped uint64 `json:"slow_sub_dropped"`
	ObsDropped     int64  `json:"obs_dropped_total"`
	// Goroutine accounting around the load: Before is sampled after the
	// platform boots, After once every writer and consumer finished.
	GoroutinesBefore int `json:"goroutines_before"`
	GoroutinesAfter  int `json:"goroutines_after"`
}

// pubsubVocabulary is the keyword universe shared by subscriptions and
// the synthetic check-in texts.
var pubsubVocabulary = []string{
	"coffee", "music", "pizza", "sushi", "jazz", "beach", "museum", "park",
	"burger", "wine", "cinema", "theater", "market", "brunch", "bar", "gallery",
}

// RunPubSub executes both phases and returns the combined result.
func RunPubSub(cfg PubSubConfig) (*PubSubResult, error) {
	if cfg.Subscriptions < 1 || cfg.Publishes < 1 || cfg.Writers < 1 ||
		cfg.Subscribers < 1 || cfg.BatchSize < 1 {
		return nil, fmt.Errorf("bench: pubsub experiment needs positive load")
	}
	res := &PubSubResult{}
	if err := runPubSubMatcher(cfg, res); err != nil {
		return nil, err
	}
	if err := runPubSubDelivery(cfg, res); err != nil {
		return nil, err
	}
	return res, nil
}

// runPubSubMatcher loads a standalone registry with subscriptions on a
// spatial grid and measures Publish throughput over a synthetic stream.
func runPubSubMatcher(cfg PubSubConfig, res *PubSubResult) error {
	rng := rand.New(rand.NewSource(cfg.Seed))
	reg := pubsub.NewRegistry(pubsub.Options{
		MaxSubscriptions: cfg.Subscriptions + 1,
		MaxPerUser:       cfg.Subscriptions + 1,
		QueueCap:         8,
		DefaultTTL:       time.Hour,
	})

	// Subscriptions tile a 10x10-degree world: each covers a random ~0.5
	// degree box, so one publish point lands inside a small fraction.
	for i := 0; i < cfg.Subscriptions; i++ {
		lat := rng.Float64() * 9.5
		lon := rng.Float64() * 9.5
		keywords := make([]string, cfg.KeywordsPerSub)
		for k := range keywords {
			keywords[k] = pubsubVocabulary[rng.Intn(len(pubsubVocabulary))]
		}
		region := geo.Rect{MinLat: lat, MinLon: lon, MaxLat: lat + 0.5, MaxLon: lon + 0.5}
		if _, err := reg.Add(int64(i+1), region, keywords, time.Hour); err != nil {
			return fmt.Errorf("bench: seed subscription %d: %w", i, err)
		}
	}

	matchesBefore := pubsub.MatchesTotal()
	secondsBefore := pubsub.MatchSecondsSum()
	start := time.Now()
	for i := 0; i < cfg.Publishes; i++ {
		// Four vocabulary words per check-in text: a 2-keyword
		// subscription matches when both land in the draw.
		words := make([]string, 4)
		for w := range words {
			words[w] = pubsubVocabulary[rng.Intn(len(pubsubVocabulary))]
		}
		reg.Publish(pubsub.Checkin{
			UserID:     int64(i%97 + 1),
			POIID:      int64(i%512 + 1),
			POIName:    "poi",
			Point:      geo.Point{Lat: rng.Float64() * 10, Lon: rng.Float64() * 10},
			TimeMillis: int64(i + 1),
			Text:       strings.Join(words, " "),
		})
	}
	elapsed := time.Since(start).Seconds()

	res.Subscriptions = cfg.Subscriptions
	res.Publishes = cfg.Publishes
	res.Matches = pubsub.MatchesTotal() - matchesBefore
	res.MatchSeconds = pubsub.MatchSecondsSum() - secondsBefore
	res.PublishPerSec = float64(cfg.Publishes) / elapsed
	if res.Publishes > 0 {
		res.MatchAvgMicros = res.MatchSeconds / float64(res.Publishes) * 1e6
	}
	return nil
}

// runPubSubDelivery measures phase B: standing queries over the real
// ingest path, long-poll consumers timing push-to-notify, and a bounded
// queue forced to overflow on an abandoned subscription.
func runPubSubDelivery(cfg PubSubConfig, res *PubSubResult) error {
	pcfg := core.DefaultConfig()
	pcfg.POIs = cfg.POIs
	pcfg.NetworkPopulation = cfg.Population
	pcfg.MeanFriends = 12
	pcfg.ClassifierTrainDocs = 300
	pcfg.Seed = cfg.Seed
	pcfg.SubQueueCap = cfg.QueueCap
	// Keep admission off the measured path: the load is the experiment.
	pcfg.WriteQPS = 100_000
	p, err := core.New(pcfg)
	if err != nil {
		return err
	}
	defer p.Close()
	catalog := p.Catalog()

	srv := httptest.NewServer(core.NewHandler(p))
	defer srv.Close()

	// The whole world: every check-in matches every standing query.
	world := client.SubscriptionSpec{MinLat: -90, MinLon: -180, MaxLat: 90, MaxLon: 180, TTL: time.Hour}

	// The abandoned subscription: registered, never polled. Its bounded
	// queue must overflow into counted drops.
	slowCl, err := client.New(srv.URL, srv.Client())
	if err != nil {
		return err
	}
	if _, err := slowCl.SignIn("facebook", fmt.Sprintf("facebook:%d", cfg.Writers+cfg.Subscribers+1)); err != nil {
		return err
	}
	slowSub, err := slowCl.CreateSubscription(world)
	if err != nil {
		return err
	}

	obsDroppedBefore := pubsub.DroppedTotal()
	res.GoroutinesBefore = runtime.NumGoroutine()

	var (
		mu          sync.Mutex
		notifyWall  []float64
		pushed      int64
		wErrs       int64
		delivered   int64
		pollErrs    int64
		writersLeft int64 = int64(cfg.Writers)
		wg          sync.WaitGroup
	)

	// Consumers: each owns one standing query and long-polls it, timing
	// push-to-notify as now minus the check-in's client-side timestamp.
	for si := 0; si < cfg.Subscribers; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			cl, err := client.New(srv.URL, srv.Client())
			if err != nil {
				atomic.AddInt64(&pollErrs, 1)
				return
			}
			if _, err := cl.SignIn("facebook", fmt.Sprintf("facebook:%d", cfg.Writers+si+1)); err != nil {
				atomic.AddInt64(&pollErrs, 1)
				return
			}
			sub, err := cl.CreateSubscription(world)
			if err != nil {
				atomic.AddInt64(&pollErrs, 1)
				return
			}
			var cursor uint64
			for {
				events, next, err := cl.PollEvents(context.Background(), sub.ID, cursor, 0, 200*time.Millisecond)
				if err != nil {
					atomic.AddInt64(&pollErrs, 1)
					return
				}
				now := time.Now().UnixMilli()
				cursor = next
				atomic.AddInt64(&delivered, int64(len(events)))
				mu.Lock()
				for _, ev := range events {
					notifyWall = append(notifyWall, float64(now-ev.TimeMillis)/1000)
				}
				mu.Unlock()
				if len(events) == 0 && atomic.LoadInt64(&writersLeft) == 0 {
					return
				}
			}
		}(si)
	}

	// Writers: sustained batched check-in stream through the real API.
	for wi := 0; wi < cfg.Writers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			defer atomic.AddInt64(&writersLeft, -1)
			cl, err := client.New(srv.URL, srv.Client())
			if err != nil {
				atomic.AddInt64(&wErrs, int64(cfg.BatchesPerWriter))
				return
			}
			cl.SetRetryPolicy(client.RetryPolicy{MaxRetries: 3, MaxWait: 50 * time.Millisecond, Budget: 64})
			if _, err := cl.SignIn("facebook", fmt.Sprintf("facebook:%d", wi+1)); err != nil {
				atomic.AddInt64(&wErrs, int64(cfg.BatchesPerWriter))
				return
			}
			for bi := 0; bi < cfg.BatchesPerWriter; bi++ {
				batch := make([]client.Checkin, cfg.BatchSize)
				stamp := time.Now().UnixMilli()
				for i := range batch {
					poi := catalog[(wi*7919+bi*131+i)%len(catalog)]
					batch[i] = client.Checkin{
						POIID:   poi.ID,
						Time:    stamp,
						Grade:   float64((i % 5) + 1),
						Network: "facebook",
					}
				}
				r, err := cl.PushCheckins(batch)
				if err != nil {
					atomic.AddInt64(&wErrs, 1)
					continue
				}
				atomic.AddInt64(&pushed, int64(r.Stored))
			}
		}(wi)
	}
	wg.Wait()

	res.CheckinsPushed = int(pushed)
	res.WriteErrors = int(wErrs)
	res.EventsDelivered = int(delivered)
	res.PollErrors = int(pollErrs)
	sort.Float64s(notifyWall)
	res.NotifyP50Millis = 1000 * percentile(notifyWall, 0.50)
	res.NotifyP99Millis = 1000 * percentile(notifyWall, 0.99)
	res.ObsDropped = pubsub.DroppedTotal() - obsDroppedBefore

	// The abandoned subscription's overflow, read back through the owner.
	if dropped, err := p.PubSub.Dropped(slowSub.UserID, slowSub.ID); err == nil {
		res.SlowSubDropped = dropped
	}

	// Every writer and consumer is done; the registry spawns no goroutines
	// of its own, so once the shared transport's idle keep-alive
	// connections are torn down the count must settle back to the
	// pre-load baseline.
	if tr, ok := srv.Client().Transport.(*http.Transport); ok {
		tr.CloseIdleConnections()
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		res.GoroutinesAfter = runtime.NumGoroutine()
		if res.GoroutinesAfter <= res.GoroutinesBefore+2 || time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	return nil
}
