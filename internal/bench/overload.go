package bench

import (
	"errors"
	"fmt"
	"net/http/httptest"
	"runtime"
	"sort"
	"sync"
	"time"

	"modissense/client"
	"modissense/internal/core"
	"modissense/internal/exec"
	"modissense/internal/faultinject"
)

// OverloadConfig parameterizes the overload experiment: a small platform
// behind the real HTTP stack, a deliberately tiny exec pool, concurrent
// interactive (search) and batch (trending) clients, and a seeded stall
// storm on one node — run once with the full protection stack (admission,
// bounded queue, breakers, retry budget) and once with every layer off.
type OverloadConfig struct {
	// POIs/Population/MeanFriends size the platform.
	POIs       int
	Population int
	// Clients is the number of concurrent load generators; each issues
	// RequestsPerClient requests back to back.
	Clients           int
	RequestsPerClient int
	// BatchEvery makes every Nth request a batch trending query (the rest
	// are interactive searches).
	BatchEvery int
	// Workers bounds the shared exec pool — small enough that concurrent
	// scatters queue.
	Workers int
	// QueryTimeout is the per-request deadline (the HTTP layer's 504).
	QueryTimeout time.Duration
	// Schedule is the fault DSL of the storm (see faultinject.ParseSchedule).
	Schedule string
	// AdmitQPS/AdmitBurst shape the protected run's interactive admission
	// bucket (batch gets half).
	AdmitQPS   float64
	AdmitBurst int
	// ExecQueueCap bounds the protected run's exec waiter queue.
	ExecQueueCap int
	// RetryBudgetRatio caps retries+hedges per primary attempt.
	RetryBudgetRatio float64
	// BreakerFailures/BreakerOpenFor/BreakerSlowAfter configure the
	// protected run's per-node breakers.
	BreakerFailures  int
	BreakerOpenFor   time.Duration
	BreakerSlowAfter time.Duration
	// HedgeAfter caps the hedge threshold of the fault-tolerant read path.
	HedgeAfter time.Duration
	// LatencyBudget is the served-interactive p99 gate of the protected run.
	LatencyBudget time.Duration
	Seed          int64
}

// DefaultOverload is a storm that stalls every read on node 1 for longer
// than the hedge threshold while eight clients hammer the API through a
// four-worker pool.
func DefaultOverload() OverloadConfig {
	return OverloadConfig{
		POIs:              400,
		Population:        800,
		Clients:           8,
		RequestsPerClient: 15,
		BatchEvery:        4,
		Workers:           4,
		QueryTimeout:      600 * time.Millisecond,
		Schedule:          "stall:node=1,dur=400ms",
		AdmitQPS:          60,
		AdmitBurst:        20,
		ExecQueueCap:      16,
		RetryBudgetRatio:  0.2,
		BreakerFailures:   2,
		BreakerOpenFor:    5 * time.Second,
		BreakerSlowAfter:  10 * time.Millisecond,
		HedgeAfter:        50 * time.Millisecond,
		LatencyBudget:     500 * time.Millisecond,
		Seed:              73,
	}
}

// OverloadClassStats is one traffic class's outcome tally in one mode.
type OverloadClassStats struct {
	Class string `json:"class"`
	Sent  int    `json:"sent"`
	// OK counts 200 answers.
	OK int `json:"ok"`
	// Rejected429/Rejected503 count well-formed overload answers.
	Rejected429 int `json:"rejected_429"`
	Rejected503 int `json:"rejected_503"`
	// Timeouts counts 504s; Errors counts 500s and transport failures.
	Timeouts int `json:"timeouts"`
	Errors   int `json:"errors"`
	// Malformed counts 429/503 answers missing the Retry-After hint or the
	// "overloaded" envelope code — contract violations, gated to zero.
	Malformed int `json:"malformed_overloads"`
	// ServedP50Millis/ServedP99Millis are wall-clock latencies over the OK
	// answers only (rejections are not service).
	ServedP50Millis float64 `json:"served_p50_ms"`
	ServedP99Millis float64 `json:"served_p99_ms"`
}

// OverloadMode is one mode's full measurement, JSON-tagged for
// BENCH_overload.json.
type OverloadMode struct {
	Mode        string             `json:"mode"`
	Interactive OverloadClassStats `json:"interactive"`
	Batch       OverloadClassStats `json:"batch"`
	// Tasks/Retries/Hedges sum the exec snapshots of every OK answer.
	Tasks   int64 `json:"tasks"`
	Retries int64 `json:"retries"`
	Hedges  int64 `json:"hedges"`
	// BudgetAttempts/BudgetSpent/BudgetDenied are the retry budget's own
	// lifetime counters (zero in the unprotected mode).
	BudgetAttempts int64 `json:"budget_attempts"`
	BudgetSpent    int64 `json:"budget_spent"`
	BudgetDenied   int64 `json:"budget_denied"`
	// BreakersOpen is the number of node breakers open when the load ends.
	BreakersOpen int `json:"breakers_open"`
	// FinalQueueDepth is the exec pool's waiter count after the load drains
	// (gated to zero: no stuck queue entries).
	FinalQueueDepth int `json:"final_queue_depth"`
	// GoroutineDelta is the goroutine-count change across the mode after a
	// settling pause (gated small: no leaked scatter workers).
	GoroutineDelta int `json:"goroutine_delta"`
}

// RunOverload executes the protected and unprotected modes and returns them
// in that order.
func RunOverload(cfg OverloadConfig) ([]OverloadMode, error) {
	if cfg.Clients < 1 || cfg.RequestsPerClient < 1 {
		return nil, fmt.Errorf("bench: overload experiment needs positive load")
	}
	if _, err := faultinject.ParseSchedule(cfg.Schedule, cfg.Seed); err != nil {
		return nil, err
	}
	protected, err := runOverloadMode(cfg, true)
	if err != nil {
		return nil, err
	}
	unprotected, err := runOverloadMode(cfg, false)
	if err != nil {
		return nil, err
	}
	return []OverloadMode{*protected, *unprotected}, nil
}

// runOverloadMode boots one platform (with or without the protection
// stack), ingests the dataset, arms the storm and drives the concurrent
// load through the real HTTP handler.
func runOverloadMode(cfg OverloadConfig, protect bool) (*OverloadMode, error) {
	// A fresh default pool per mode: the unprotected run must not inherit
	// the protected run's queue cap or run tracker, and vice versa.
	exec.SetDefaultWorkers(cfg.Workers)
	defer exec.SetDefaultWorkers(0)

	pcfg := core.DefaultConfig()
	pcfg.POIs = cfg.POIs
	pcfg.NetworkPopulation = cfg.Population
	pcfg.MeanFriends = 12
	pcfg.ClassifierTrainDocs = 300
	pcfg.Seed = cfg.Seed
	pcfg.QueryTimeout = cfg.QueryTimeout
	pcfg.ReadReplicas = 1
	if protect {
		pcfg.ReadMaxAttempts = 3
		pcfg.ReadHedgeAfter = cfg.HedgeAfter
		pcfg.AllowDegraded = false
		pcfg.AdmitQPS = cfg.AdmitQPS
		pcfg.AdmitBurst = cfg.AdmitBurst
		pcfg.ExecQueueCap = cfg.ExecQueueCap
		pcfg.RetryBudgetRatio = cfg.RetryBudgetRatio
		pcfg.BreakerFailures = cfg.BreakerFailures
		pcfg.BreakerOpenFor = cfg.BreakerOpenFor
		pcfg.BreakerSlowAfter = cfg.BreakerSlowAfter
	} else {
		// A single attempt keeps the read on the injectable policy path (the
		// plain scatter has no interception point, so the storm would miss it
		// entirely) while disabling every protection: no retries, no hedging,
		// no admission, no queue cap, no budget, no breakers.
		pcfg.ReadMaxAttempts = 1
		pcfg.AllowDegraded = false
	}
	p, err := core.New(pcfg)
	if err != nil {
		return nil, err
	}
	since := time.Date(2015, 5, 1, 0, 0, 0, 0, time.UTC)
	until := time.Date(2015, 5, 8, 0, 0, 0, 0, time.UTC)
	if _, err := p.Collect(since, until); err != nil {
		return nil, err
	}
	if err := p.Visits.Table().CatchUpReplication(); err != nil {
		return nil, err
	}
	sched, err := faultinject.ParseSchedule(cfg.Schedule, cfg.Seed)
	if err != nil {
		return nil, err
	}
	p.Query.SetFaultInjector(faultinject.New(sched))

	srv := httptest.NewServer(core.NewHandler(p))
	defer srv.Close()

	mode := &OverloadMode{Mode: "unprotected"}
	if protect {
		mode.Mode = "protected"
	}
	mode.Interactive.Class = "interactive"
	mode.Batch.Class = "batch"

	baseGoroutines := runtime.NumGoroutine()

	type sample struct {
		batch   bool
		wall    time.Duration
		status  int // 0 = transport error
		ok      bool
		malform bool
		tasks   int64
		retries int64
		hedges  int64
	}
	var (
		mu      sync.Mutex
		samples []sample
		wg      sync.WaitGroup
	)
	for ci := 0; ci < cfg.Clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			cl, err := client.New(srv.URL, srv.Client())
			if err != nil {
				return
			}
			// The benchmark measures the server's raw answers; client-side
			// retries would mask the 429/503s under test.
			cl.SetRetryPolicy(client.RetryPolicy{})
			if _, err := cl.SignIn("facebook", fmt.Sprintf("facebook:%d", ci+1)); err != nil {
				return
			}
			friends, err := cl.Friends("")
			if err != nil {
				return
			}
			ids := make([]int64, 0, len(friends))
			for _, f := range friends {
				ids = append(ids, f.ID)
			}
			for ri := 0; ri < cfg.RequestsPerClient; ri++ {
				s := sample{batch: cfg.BatchEvery > 0 && ri%cfg.BatchEvery == cfg.BatchEvery-1}
				start := time.Now()
				var res interface {
					execCounts() (int64, int64, int64)
				}
				var callErr error
				if s.batch {
					r, err := cl.Trending(0, 0, 0, 0, 168, 5, until)
					callErr = err
					if r != nil {
						res = overloadResult{r.Exec.Tasks, r.Exec.Retries, r.Exec.Hedges}
					}
				} else {
					r, err := cl.Search(client.SearchParams{Friends: ids, From: since, To: until, Limit: 5})
					callErr = err
					if r != nil {
						res = overloadResult{r.Exec.Tasks, r.Exec.Retries, r.Exec.Hedges}
					}
				}
				s.wall = time.Since(start)
				if callErr == nil {
					s.ok = true
					if res != nil {
						s.tasks, s.retries, s.hedges = res.execCounts()
					}
					s.status = 200
				} else {
					var apiErr *client.APIError
					if errors.As(callErr, &apiErr) {
						s.status = apiErr.Status
						if apiErr.Status == 429 || apiErr.Status == 503 {
							s.malform = apiErr.RetryAfter <= 0 || apiErr.Code != client.CodeOverloaded
						}
					}
				}
				mu.Lock()
				samples = append(samples, s)
				mu.Unlock()
			}
		}(ci)
	}
	wg.Wait()

	// Let storm-stalled losers and breaker probes wind down, then check for
	// leaks: the bounded queue must be empty and the scatter goroutines gone.
	time.Sleep(500 * time.Millisecond)
	mode.FinalQueueDepth = exec.Default().QueueLen()
	mode.GoroutineDelta = runtime.NumGoroutine() - baseGoroutines

	var servedInteractive, servedBatch []float64
	for _, s := range samples {
		st := &mode.Interactive
		if s.batch {
			st = &mode.Batch
		}
		st.Sent++
		switch {
		case s.ok:
			st.OK++
			mode.Tasks += s.tasks
			mode.Retries += s.retries
			mode.Hedges += s.hedges
			if s.batch {
				servedBatch = append(servedBatch, s.wall.Seconds())
			} else {
				servedInteractive = append(servedInteractive, s.wall.Seconds())
			}
		case s.status == 429:
			st.Rejected429++
		case s.status == 503:
			st.Rejected503++
		case s.status == 504:
			st.Timeouts++
		default:
			st.Errors++
		}
		if s.malform {
			st.Malformed++
		}
	}
	sort.Float64s(servedInteractive)
	sort.Float64s(servedBatch)
	mode.Interactive.ServedP50Millis = 1000 * percentile(servedInteractive, 0.50)
	mode.Interactive.ServedP99Millis = 1000 * percentile(servedInteractive, 0.99)
	mode.Batch.ServedP50Millis = 1000 * percentile(servedBatch, 0.50)
	mode.Batch.ServedP99Millis = 1000 * percentile(servedBatch, 0.99)

	if b := p.Query.RetryBudget(); b != nil {
		mode.BudgetAttempts = b.Attempts()
		mode.BudgetSpent = b.Spent()
		mode.BudgetDenied = b.Denied()
	}
	if bs := p.Query.Breakers(); bs != nil {
		mode.BreakersOpen = bs.OpenCount()
	}
	p.Query.SetFaultInjector(nil)
	return mode, nil
}

// overloadResult adapts a query result's exec snapshot for tallying.
type overloadResult struct{ tasks, retries, hedges int64 }

func (r overloadResult) execCounts() (int64, int64, int64) { return r.tasks, r.retries, r.hedges }
