package hotin

import (
	"math"
	"testing"
	"time"

	"modissense/internal/cluster"
	"modissense/internal/kvstore"
	"modissense/internal/model"
	"modissense/internal/relstore"
	"modissense/internal/repos"
)

func setup(t *testing.T) (*repos.VisitsRepo, *repos.POIRepo, []model.POI) {
	t.Helper()
	db := relstore.NewDB()
	poiRepo, err := repos.NewPOIRepo(db)
	if err != nil {
		t.Fatal(err)
	}
	pois := []model.POI{
		{ID: 1, Name: "hot-taverna", Lat: 37.9, Lon: 23.7, Keywords: []string{"restaurant"}},
		{ID: 2, Name: "quiet-museum", Lat: 37.95, Lon: 23.72, Keywords: []string{"museum"}},
		{ID: 3, Name: "loved-bar", Lat: 37.92, Lon: 23.71, Keywords: []string{"bar"}},
	}
	for _, p := range pois {
		if _, err := poiRepo.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	visits, err := repos.NewVisitsRepo(repos.SchemaReplicated, 100, 8, 4, kvstore.DefaultStoreOptions())
	if err != nil {
		t.Fatal(err)
	}
	return visits, poiRepo, pois
}

func at(h int) int64 {
	return model.Millis(time.Date(2015, 5, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(h) * time.Hour))
}

func storeVisit(t *testing.T, visits *repos.VisitsRepo, user int64, poi model.POI, hour int, grade float64) {
	t.Helper()
	if err := visits.Store(model.Visit{UserID: user, Time: at(hour), Grade: grade, POI: poi}); err != nil {
		t.Fatal(err)
	}
}

func TestHotInAggregation(t *testing.T) {
	visits, poiRepo, pois := setup(t)
	// POI 1: 4 visits, mediocre grades. POI 3: 2 visits, great grades.
	// POI 2: one visit outside the window (must be excluded).
	for i := 0; i < 4; i++ {
		storeVisit(t, visits, int64(i+1), pois[0], 2+i, 3)
	}
	storeVisit(t, visits, 5, pois[2], 4, 5)
	storeVisit(t, visits, 6, pois[2], 5, 5)
	storeVisit(t, visits, 7, pois[1], 100, 4) // outside window

	stats, err := Run(visits, poiRepo, Config{FromMillis: at(0), ToMillis: at(24)})
	if err != nil {
		t.Fatal(err)
	}
	if stats.VisitsAggregated != 6 {
		t.Errorf("aggregated %d visits, want 6", stats.VisitsAggregated)
	}
	if stats.POIsUpdated != 2 {
		t.Errorf("updated %d POIs, want 2", stats.POIsUpdated)
	}
	if stats.MaxVisits != 4 {
		t.Errorf("max visits = %d, want 4", stats.MaxVisits)
	}
	p1, _ := poiRepo.Get(1)
	p2, _ := poiRepo.Get(2)
	p3, _ := poiRepo.Get(3)
	if p1.Hotness != 1.0 {
		t.Errorf("hottest POI hotness = %g, want 1", p1.Hotness)
	}
	if math.Abs(p3.Hotness-0.5) > 1e-9 {
		t.Errorf("POI 3 hotness = %g, want 0.5", p3.Hotness)
	}
	if p2.Hotness != 0 {
		t.Errorf("out-of-window POI hotness = %g, want 0", p2.Hotness)
	}
	// Interest: POI1 grade 3 → 0.5; POI3 grade 5 → 1.0.
	if math.Abs(p1.Interest-0.5) > 1e-9 {
		t.Errorf("POI 1 interest = %g, want 0.5", p1.Interest)
	}
	if math.Abs(p3.Interest-1.0) > 1e-9 {
		t.Errorf("POI 3 interest = %g, want 1", p3.Interest)
	}
}

func TestHotInEmptyWindow(t *testing.T) {
	visits, poiRepo, pois := setup(t)
	storeVisit(t, visits, 1, pois[0], 50, 4)
	stats, err := Run(visits, poiRepo, Config{FromMillis: at(0), ToMillis: at(10)})
	if err != nil {
		t.Fatal(err)
	}
	if stats.VisitsAggregated != 0 || stats.POIsUpdated != 0 {
		t.Errorf("empty window stats = %+v", stats)
	}
}

func TestHotInValidation(t *testing.T) {
	visits, poiRepo, _ := setup(t)
	if _, err := Run(nil, poiRepo, Config{}); err == nil {
		t.Error("nil visits must fail")
	}
	if _, err := Run(visits, nil, Config{}); err == nil {
		t.Error("nil pois must fail")
	}
	if _, err := Run(visits, poiRepo, Config{FromMillis: 10, ToMillis: 5}); err == nil {
		t.Error("inverted window must fail")
	}
	if _, err := Run(visits, poiRepo, Config{MapTasks: -1}); err == nil {
		t.Error("negative map tasks must fail")
	}
}

func TestHotInUnknownPOIsSkipped(t *testing.T) {
	visits, poiRepo, _ := setup(t)
	ghost := model.POI{ID: 999, Name: "ghost"}
	storeVisit(t, visits, 1, ghost, 1, 4)
	stats, err := Run(visits, poiRepo, Config{FromMillis: at(0), ToMillis: at(24)})
	if err != nil {
		t.Fatal(err)
	}
	if stats.VisitsAggregated != 1 || stats.POIsUpdated != 0 {
		t.Errorf("ghost POI stats = %+v", stats)
	}
}

func TestHotInOnClusterReportsDuration(t *testing.T) {
	visits, poiRepo, pois := setup(t)
	for u := int64(1); u <= 50; u++ {
		storeVisit(t, visits, u, pois[int(u)%3], int(u%24), 4)
	}
	clus, err := cluster.New(cluster.DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Run(visits, poiRepo, Config{FromMillis: at(0), ToMillis: at(24), Cluster: clus})
	if err != nil {
		t.Fatal(err)
	}
	if stats.SimulatedSeconds <= 0 {
		t.Error("cluster run must report a positive simulated duration")
	}
}

func TestHotInTimeDecay(t *testing.T) {
	visits, poiRepo, pois := setup(t)
	// POI 1: 3 old visits (48h before the window end).
	// POI 3: 2 recent visits (at the window end).
	for i := 0; i < 3; i++ {
		storeVisit(t, visits, int64(i+1), pois[0], 0, 4)
	}
	storeVisit(t, visits, 4, pois[2], 48, 4)
	storeVisit(t, visits, 5, pois[2], 48, 4)

	// Without decay, raw counts win: POI 1 is hottest.
	stats, err := Run(visits, poiRepo, Config{FromMillis: at(0), ToMillis: at(48)})
	if err != nil {
		t.Fatal(err)
	}
	if stats.MaxVisits != 3 {
		t.Fatalf("max visits = %d", stats.MaxVisits)
	}
	p1, _ := poiRepo.Get(1)
	p3, _ := poiRepo.Get(3)
	if !(p1.Hotness > p3.Hotness) {
		t.Fatalf("without decay POI 1 (%g) must beat POI 3 (%g)", p1.Hotness, p3.Hotness)
	}

	// With a 12h half-life, the 48h-old visits decay by 2^-4 each, so the
	// two fresh visits win.
	halfLife := at(12) - at(0)
	if _, err := Run(visits, poiRepo, Config{FromMillis: at(0), ToMillis: at(48), DecayHalfLifeMillis: halfLife}); err != nil {
		t.Fatal(err)
	}
	p1, _ = poiRepo.Get(1)
	p3, _ = poiRepo.Get(3)
	if !(p3.Hotness > p1.Hotness) {
		t.Fatalf("with decay POI 3 (%g) must beat POI 1 (%g)", p3.Hotness, p1.Hotness)
	}
	if p3.Hotness != 1.0 {
		t.Errorf("freshest POI must normalize to 1, got %g", p3.Hotness)
	}
	// Interest stays on the [0,1] scale under decay.
	if p3.Interest < 0 || p3.Interest > 1 {
		t.Errorf("interest %g out of [0,1]", p3.Interest)
	}
}
