// Package hotin implements the HotIn Update module: a periodic MapReduce
// job that aggregates hotness (crowd concentration) and interest (average
// friend opinion) over all visits inside a configurable time frame T and
// writes the metrics into the POI repository.
package hotin

import (
	"fmt"
	"math"

	"modissense/internal/cluster"
	"modissense/internal/mapreduce"
	"modissense/internal/model"
	"modissense/internal/repos"
)

// Config parameterizes one update run.
type Config struct {
	// FromMillis/ToMillis delimit the aggregation window T (inclusive).
	FromMillis int64
	ToMillis   int64
	// MapTasks is the number of map splits (defaults to 16).
	MapTasks int
	// Reducers is the number of reduce partitions (defaults to 8).
	Reducers int
	// Cluster, when non-nil, models the job's schedule and reports its
	// simulated duration.
	Cluster *cluster.Cluster
	// DecayHalfLifeMillis, when positive, weights each visit by
	// 2^-(age/halfLife) where age = ToMillis − visit time, so hotness
	// reflects *recent* crowd concentration — the "hotness over time"
	// reading of §1. Zero keeps the paper's plain count aggregation.
	DecayHalfLifeMillis int64
}

// Stats summarizes one update run.
type Stats struct {
	VisitsAggregated int
	POIsUpdated      int
	// MaxVisits is the window's hottest POI visit count (the hotness
	// normalizer).
	MaxVisits int
	// SimulatedSeconds is the modeled job duration (0 without a cluster).
	SimulatedSeconds float64
}

// poiAggregate is the reducer's per-POI output. Weight equals Visits when
// decay is disabled; under decay it is the sum of the visits' decay
// factors, and WeightedGradeSum weights each grade the same way.
type poiAggregate struct {
	POIID            int64
	Visits           int
	Weight           float64
	WeightedGradeSum float64
}

// Run scans the Visits repository, aggregates per POI with a MapReduce
// job, normalizes and writes hotness/interest into the POI repository.
//
// Hotness is the POI's visit count divided by the window maximum (∈ [0,1]);
// interest is the average sentiment grade rescaled from [1,5] to [0,1].
func Run(visits *repos.VisitsRepo, pois *repos.POIRepo, cfg Config) (Stats, error) {
	if visits == nil || pois == nil {
		return Stats{}, fmt.Errorf("hotin: repositories must be non-nil")
	}
	if cfg.ToMillis < cfg.FromMillis {
		return Stats{}, fmt.Errorf("hotin: window inverted")
	}
	if cfg.MapTasks == 0 {
		cfg.MapTasks = 16
	}
	if cfg.Reducers == 0 {
		cfg.Reducers = 8
	}
	if cfg.MapTasks < 1 || cfg.Reducers < 1 {
		return Stats{}, fmt.Errorf("hotin: map/reduce task counts must be positive")
	}

	// Input: every visit in the window (the paper configures the job "with
	// a scanner over all visits in T").
	var records []interface{}
	err := visits.ScanAll(func(v model.Visit) bool {
		if v.Time >= cfg.FromMillis && v.Time <= cfg.ToMillis {
			records = append(records, v)
		}
		return true
	})
	if err != nil {
		return Stats{}, err
	}

	job := &mapreduce.Job{
		Name:  "hotin-update",
		Input: mapreduce.SplitRecords(records, cfg.MapTasks),
		Mapper: mapreduce.MapperFunc(func(record interface{}, emit func(string, interface{})) error {
			v, ok := record.(model.Visit)
			if !ok {
				return fmt.Errorf("hotin: unexpected record %T", record)
			}
			w := 1.0
			if cfg.DecayHalfLifeMillis > 0 {
				age := float64(cfg.ToMillis - v.Time)
				w = math.Exp2(-age / float64(cfg.DecayHalfLifeMillis))
			}
			emit(fmt.Sprintf("p%012d", v.POI.ID), poiAggregate{
				POIID: v.POI.ID, Visits: 1, Weight: w, WeightedGradeSum: v.Grade * w,
			})
			return nil
		}),
		Combiner:    sumReducer(),
		Reducer:     sumReducer(),
		NumReducers: cfg.Reducers,
	}
	var res *mapreduce.Result
	if cfg.Cluster != nil {
		res, err = job.RunOnCluster(cfg.Cluster)
	} else {
		res, err = job.Run()
	}
	if err != nil {
		return Stats{}, err
	}

	stats := Stats{VisitsAggregated: len(records), SimulatedSeconds: res.SimulatedSeconds}
	aggs := make([]poiAggregate, 0, len(res.Output))
	maxWeight := 0.0
	for _, pair := range res.Output {
		a := pair.Value.(poiAggregate)
		aggs = append(aggs, a)
		if a.Visits > stats.MaxVisits {
			stats.MaxVisits = a.Visits
		}
		if a.Weight > maxWeight {
			maxWeight = a.Weight
		}
	}
	for _, a := range aggs {
		hotness := 0.0
		if maxWeight > 0 {
			hotness = a.Weight / maxWeight
		}
		interest := 0.0
		if a.Weight > 0 {
			interest = (a.WeightedGradeSum/a.Weight - 1) / 4 // [1,5] → [0,1]
		}
		if err := pois.UpdateHotIn(a.POIID, hotness, interest); err != nil {
			// POIs that vanished from the catalog (or unresolved ids under
			// the normalized schema) are skipped, not fatal.
			continue
		}
		stats.POIsUpdated++
	}
	return stats, nil
}

// sumReducer folds poiAggregate values; it is both the combiner and the
// reducer of the job.
func sumReducer() mapreduce.Reducer {
	return mapreduce.ReducerFunc(func(key string, values []interface{}, emit func(string, interface{})) error {
		var total poiAggregate
		for _, v := range values {
			a, ok := v.(poiAggregate)
			if !ok {
				return fmt.Errorf("hotin: unexpected value %T", v)
			}
			total.POIID = a.POIID
			total.Visits += a.Visits
			total.Weight += a.Weight
			total.WeightedGradeSum += a.WeightedGradeSum
		}
		emit(key, total)
		return nil
	})
}
