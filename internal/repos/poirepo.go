package repos

import (
	"fmt"
	"sort"
	"sync/atomic"

	"modissense/internal/geo"
	"modissense/internal/model"
	"modissense/internal/relstore"
)

// POIRepo is the POI repository: all non-personalized POI information,
// hosted on the relational store with a B-tree index on hotness and a
// spatial index on (lat, lon). It serves heavy random-access read loads
// with low insert/update rates, which is why the paper places it in
// PostgreSQL.
type POIRepo struct {
	table  *relstore.Table
	nextID atomic.Int64
}

const (
	poiColID = iota
	poiColName
	poiColLat
	poiColLon
	poiColKeywords
	poiColHotness
	poiColInterest
)

// NewPOIRepo creates the repository with its schema and indexes.
func NewPOIRepo(db *relstore.DB) (*POIRepo, error) {
	schema, err := relstore.NewSchema(
		relstore.Column{Name: "id", Type: relstore.Int},
		relstore.Column{Name: "name", Type: relstore.Text},
		relstore.Column{Name: "lat", Type: relstore.Float},
		relstore.Column{Name: "lon", Type: relstore.Float},
		relstore.Column{Name: "keywords", Type: relstore.Text},
		relstore.Column{Name: "hotness", Type: relstore.Float},
		relstore.Column{Name: "interest", Type: relstore.Float},
	)
	if err != nil {
		return nil, err
	}
	table, err := db.CreateTable("pois", schema)
	if err != nil {
		return nil, err
	}
	if err := table.CreateIndex("hotness"); err != nil {
		return nil, err
	}
	if err := table.CreateIndex("name"); err != nil {
		return nil, err
	}
	if err := table.CreateSpatialIndex("lat", "lon"); err != nil {
		return nil, err
	}
	return &POIRepo{table: table}, nil
}

func poiToRow(p model.POI) relstore.Row {
	return relstore.Row{
		relstore.IntVal(p.ID),
		relstore.TextVal(p.Name),
		relstore.FloatVal(p.Lat),
		relstore.FloatVal(p.Lon),
		relstore.TextVal(p.KeywordString()),
		relstore.FloatVal(p.Hotness),
		relstore.FloatVal(p.Interest),
	}
}

func rowToPOI(r relstore.Row) model.POI {
	p := model.POI{
		ID:       r[poiColID].I,
		Name:     r[poiColName].S,
		Lat:      r[poiColLat].F,
		Lon:      r[poiColLon].F,
		Hotness:  r[poiColHotness].F,
		Interest: r[poiColInterest].F,
	}
	if r[poiColKeywords].S != "" {
		p.Keywords = splitWords(r[poiColKeywords].S)
	}
	return p
}

func splitWords(s string) []string {
	var out []string
	start := -1
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ' ' {
			if start >= 0 {
				out = append(out, s[start:i])
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	return out
}

// Insert adds a POI. A zero ID is auto-assigned from a reserved high range
// (above 10⁹) so user- and event-created POIs never collide with catalog
// ids; the stored POI is returned.
func (r *POIRepo) Insert(p model.POI) (model.POI, error) {
	if p.ID == 0 {
		p.ID = 1_000_000_000 + r.nextID.Add(1)
	}
	if err := r.table.Insert(poiToRow(p)); err != nil {
		return model.POI{}, err
	}
	return p, nil
}

// Get fetches one POI by id.
func (r *POIRepo) Get(id int64) (model.POI, bool) {
	row, ok := r.table.Get(id)
	if !ok {
		return model.POI{}, false
	}
	return rowToPOI(row), true
}

// Len returns the catalog size.
func (r *POIRepo) Len() int { return r.table.Len() }

// UpdateHotIn sets the hotness and interest metrics of one POI (the HotIn
// Update module's write path).
func (r *POIRepo) UpdateHotIn(id int64, hotness, interest float64) error {
	row, ok := r.table.Get(id)
	if !ok {
		return fmt.Errorf("repos: no POI %d", id)
	}
	row[poiColHotness] = relstore.FloatVal(hotness)
	row[poiColInterest] = relstore.FloatVal(interest)
	return r.table.Update(row)
}

// SearchSpec is a non-personalized POI query: bounding box, optional
// keyword, ordering and limit.
type SearchSpec struct {
	BBox    *geo.Rect
	Keyword string
	// OrderBy is "hotness", "interest" or "" (id order).
	OrderBy string
	Limit   int
}

// Search answers a non-personalized query straight from the relational
// store and reports the rows examined (the cost-model input).
func (r *POIRepo) Search(spec SearchSpec) ([]model.POI, int, error) {
	q := relstore.Query{Within: spec.BBox, Limit: spec.Limit, Desc: spec.OrderBy != ""}
	if spec.Keyword != "" {
		q.Where = append(q.Where, relstore.Predicate{
			Column: "keywords", Op: relstore.ContainsWord, Arg: relstore.TextVal(spec.Keyword),
		})
	}
	switch spec.OrderBy {
	case "hotness", "interest":
		q.OrderBy = spec.OrderBy
	case "":
	default:
		return nil, 0, fmt.Errorf("repos: unsupported order %q", spec.OrderBy)
	}
	rows, info, err := r.table.Select(q)
	if err != nil {
		return nil, 0, err
	}
	out := make([]model.POI, len(rows))
	for i, row := range rows {
		out[i] = rowToPOI(row)
	}
	return out, info.RowsExamined, nil
}

// All streams the full catalog in id order (used to bootstrap connectors
// and the event-detection filter).
func (r *POIRepo) All() ([]model.POI, error) {
	rows, _, err := r.table.Select(relstore.Query{})
	if err != nil {
		return nil, err
	}
	out := make([]model.POI, len(rows))
	for i, row := range rows {
		out[i] = rowToPOI(row)
	}
	return out, nil
}

// ResolvePOI implements the collector's POIResolver against the catalog.
func (r *POIRepo) ResolvePOI(c model.Checkin) (model.POI, bool) {
	return r.Get(c.POIID)
}

// CategoryStat is one POI-category row of the analytics view.
type CategoryStat struct {
	Category    string  `json:"category"`
	POIs        int     `json:"pois"`
	AvgHotness  float64 `json:"avg_hotness"`
	MaxHotness  float64 `json:"max_hotness"`
	AvgInterest float64 `json:"avg_interest"`
}

// CategoryStats aggregates the catalog per leading keyword (the POI's
// category): counts and hotness/interest statistics, optionally restricted
// to a bounding box.
func (r *POIRepo) CategoryStats(bbox *geo.Rect) ([]CategoryStat, error) {
	// Group on the name prefix? The category is the first keyword; the
	// keywords column stores "category extra...", so grouping needs a
	// derived value. The relational store groups on stored columns only,
	// so group on the full keyword string and fold prefixes here.
	rows, err := r.table.GroupBy(relstore.Query{Within: bbox}, "keywords", []relstore.Aggregation{
		{Func: relstore.Count},
		{Func: relstore.Avg, Column: "hotness"},
		{Func: relstore.Max, Column: "hotness"},
		{Func: relstore.Avg, Column: "interest"},
	})
	if err != nil {
		return nil, err
	}
	byCat := map[string]*CategoryStat{}
	for _, g := range rows {
		words := splitWords(g.Key.S)
		cat := "uncategorized"
		if len(words) > 0 {
			cat = words[0]
		}
		s := byCat[cat]
		if s == nil {
			s = &CategoryStat{Category: cat}
			byCat[cat] = s
		}
		n := int(g.Values[0])
		// Merge weighted averages across keyword-string groups.
		total := float64(s.POIs + n)
		s.AvgHotness = (s.AvgHotness*float64(s.POIs) + g.Values[1]*float64(n)) / total
		s.AvgInterest = (s.AvgInterest*float64(s.POIs) + g.Values[3]*float64(n)) / total
		if g.Values[2] > s.MaxHotness {
			s.MaxHotness = g.Values[2]
		}
		s.POIs += n
	}
	out := make([]CategoryStat, 0, len(byCat))
	for _, s := range byCat {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Category < out[j].Category })
	return out, nil
}
