// Package repos implements the platform's datastore repositories (§2.1 of
// the paper): POI and Blogs on the relational store, Social-Info, Text,
// Visits and GPS-Traces on the NoSQL store. It owns the row-key encodings
// that make range scans line up with the access patterns each repository
// serves.
package repos

import (
	"fmt"
	"strconv"
	"strings"
)

// Row-key encoding: fixed-width zero-padded decimal fields joined by '|'
// so that lexicographic order equals numeric order. Visits and GPS rows
// lead with the user id, clustering each user's history into a contiguous
// key range — the property the per-region coprocessor gets exploit.

// putPadded writes v as a fixed-width zero-padded decimal into dst. It
// requires 0 <= v < 10^len(dst); callers fall back to fmt for values
// outside that window (negative timestamps in hand-built specs).
func putPadded(dst []byte, v int64) bool {
	if v < 0 {
		return false
	}
	for i := len(dst) - 1; i >= 0; i-- {
		dst[i] = byte('0' + v%10)
		v /= 10
	}
	return v == 0
}

// UserKeyPrefix returns the key prefix of all rows of one user. Exported
// because the query coprocessors route friends to regions with it.
func UserKeyPrefix(userID int64) string {
	var b [14]byte
	b[0], b[13] = 'u', '|'
	if !putPadded(b[1:13], userID) {
		return fmt.Sprintf("u%012d|", userID)
	}
	return string(b[:])
}

// visitRowKey builds a Visits row key: user, time, then a sequence number
// to keep same-millisecond visits distinct.
func visitRowKey(userID, timeMillis int64, seq uint32) string {
	var b [35]byte
	b[0], b[13], b[14], b[28] = 'u', '|', 't', '|'
	if !putPadded(b[1:13], userID) || !putPadded(b[15:28], timeMillis) || !putPadded(b[29:35], int64(seq)) {
		return fmt.Sprintf("u%012d|t%013d|%06d", userID, timeMillis, seq)
	}
	return string(b[:])
}

// visitTimeKey builds the "u<user>|t<time>|" prefix that bounds one user's
// visits at one timestamp.
func visitTimeKey(userID, timeMillis int64) string {
	var b [29]byte
	b[0], b[13], b[14], b[28] = 'u', '|', 't', '|'
	if !putPadded(b[1:13], userID) || !putPadded(b[15:28], timeMillis) {
		return fmt.Sprintf("u%012d|t%013d|", userID, timeMillis)
	}
	return string(b[:])
}

// VisitScanBounds returns the [start, stop) row range covering one user's
// visits within [fromMillis, toMillis]. Exported for the region-local scans
// the query coprocessors perform — built without fmt, since the coprocessor
// constructs one range per friend per region on the query hot path.
func VisitScanBounds(userID, fromMillis, toMillis int64) (string, string) {
	return visitTimeKey(userID, fromMillis), visitTimeKey(userID, toMillis+1)
}

// parseVisitRowKey decodes a Visits row key.
func parseVisitRowKey(key string) (userID, timeMillis int64, seq uint32, err error) {
	parts := strings.Split(key, "|")
	if len(parts) != 3 || len(parts[0]) != 13 || len(parts[1]) != 14 || len(parts[2]) != 6 {
		return 0, 0, 0, fmt.Errorf("repos: malformed visit key %q", key)
	}
	userID, err = strconv.ParseInt(parts[0][1:], 10, 64)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("repos: visit key user %q: %w", key, err)
	}
	timeMillis, err = strconv.ParseInt(parts[1][1:], 10, 64)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("repos: visit key time %q: %w", key, err)
	}
	s, err := strconv.ParseUint(parts[2], 10, 32)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("repos: visit key seq %q: %w", key, err)
	}
	return userID, timeMillis, uint32(s), nil
}

// textRowKey builds a Text row key: POI, user, time — "texts are indexed
// by user, POI and time; for any given POI we are able to retrieve the
// comments that a specified user made at any given time interval".
func textRowKey(poiID, userID, timeMillis int64) string {
	return fmt.Sprintf("p%012d|u%012d|t%013d", poiID, userID, timeMillis)
}

// textScanBounds covers (poi, user) comments within [from, to].
func textScanBounds(poiID, userID, fromMillis, toMillis int64) (string, string) {
	return fmt.Sprintf("p%012d|u%012d|t%013d", poiID, userID, fromMillis),
		fmt.Sprintf("p%012d|u%012d|t%013d", poiID, userID, toMillis+1)
}

// gpsRowKey builds a GPS-trace row key: user then time. The repository is
// scan-only (no secondary indexes), matching the paper's design note.
func gpsRowKey(userID, timeMillis int64, seq uint32) string {
	return fmt.Sprintf("u%012d|t%013d|%06d", userID, timeMillis, seq)
}

// socialRowKey is the Social-Info row for one user.
func socialRowKey(userID int64) string {
	return fmt.Sprintf("u%012d", userID)
}

// userSplitKeys pre-splits a user-keyed table into n contiguous user-id
// ranges over [1, maxUser], giving every region an equal share of users.
func userSplitKeys(maxUser int64, n int) []string {
	if n <= 1 {
		return nil
	}
	keys := make([]string, 0, n-1)
	for i := 1; i < n; i++ {
		boundary := maxUser * int64(i) / int64(n)
		if boundary < 1 {
			boundary = 1
		}
		keys = append(keys, UserKeyPrefix(boundary))
	}
	// Deduplicate (tiny maxUser with many regions).
	out := keys[:0]
	var prev string
	for _, k := range keys {
		if k != prev {
			out = append(out, k)
		}
		prev = k
	}
	return out
}
