package repos

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
	"time"

	"modissense/internal/geo"
	"modissense/internal/kvstore"
	"modissense/internal/model"
	"modissense/internal/relstore"
	"modissense/internal/trajectory"
	"modissense/internal/workload"
)

func TestKeyEncodingOrderAndRoundTrip(t *testing.T) {
	// Lexicographic order of encoded keys must equal numeric order.
	k1 := visitRowKey(5, 1000, 1)
	k2 := visitRowKey(5, 1001, 0)
	k3 := visitRowKey(6, 0, 0)
	k4 := visitRowKey(10, 0, 0)
	if !(k1 < k2 && k2 < k3 && k3 < k4) {
		t.Errorf("key order broken: %q %q %q %q", k1, k2, k3, k4)
	}
	u, ts, seq, err := parseVisitRowKey(visitRowKey(123456, 98765432100, 42))
	if err != nil || u != 123456 || ts != 98765432100 || seq != 42 {
		t.Errorf("round trip = %d %d %d %v", u, ts, seq, err)
	}
	if _, _, _, err := parseVisitRowKey("garbage"); err == nil {
		t.Error("malformed key must fail")
	}
	// Scan bounds are inclusive of from and to.
	start, stop := VisitScanBounds(5, 1000, 2000)
	if !(start <= visitRowKey(5, 1000, 0) && visitRowKey(5, 2000, 999999) < stop) {
		t.Error("scan bounds must cover [from,to]")
	}
	if visitRowKey(5, 2001, 0) < stop {
		t.Error("scan bounds must exclude times past to")
	}
}

func TestUserSplitKeys(t *testing.T) {
	keys := userSplitKeys(1000, 4)
	if len(keys) != 3 {
		t.Fatalf("got %d split keys", len(keys))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			t.Error("split keys must be strictly increasing")
		}
	}
	if got := userSplitKeys(1000, 1); got != nil {
		t.Errorf("single region needs no splits, got %v", got)
	}
	// Tiny population with many regions deduplicates.
	small := userSplitKeys(2, 8)
	for i := 1; i < len(small); i++ {
		if small[i] == small[i-1] {
			t.Error("duplicate split keys must be removed")
		}
	}
}

func newTestPOIRepo(t testing.TB) (*POIRepo, []model.POI) {
	t.Helper()
	db := relstore.NewDB()
	repo, err := NewPOIRepo(db)
	if err != nil {
		t.Fatal(err)
	}
	pois := workload.GenPOIs(rand.New(rand.NewSource(3)), 500)
	for _, p := range pois {
		if _, err := repo.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	return repo, pois
}

func TestPOIRepoInsertGetSearch(t *testing.T) {
	repo, pois := newTestPOIRepo(t)
	if repo.Len() != len(pois) {
		t.Fatalf("len = %d", repo.Len())
	}
	got, ok := repo.Get(pois[7].ID)
	if !ok || got.Name != pois[7].Name || len(got.Keywords) == 0 {
		t.Errorf("Get = %+v, %v", got, ok)
	}
	// Auto-assigned ids.
	created, err := repo.Insert(model.POI{Name: "event-1", Lat: 37.9, Lon: 23.7, Keywords: []string{"event"}})
	if err != nil {
		t.Fatal(err)
	}
	if created.ID <= 1_000_000_000 {
		t.Errorf("auto id = %d, want above the reserved range start", created.ID)
	}
	// Spatial + keyword search.
	box := geo.RectAround(geo.Point{Lat: 37.9838, Lon: 23.7275}, 20000)
	results, examined, err := repo.Search(SearchSpec{BBox: &box, Keyword: "restaurant", OrderBy: "hotness", Limit: 10})
	if err != nil {
		t.Fatal(err)
	}
	if examined == 0 {
		t.Error("search must report rows examined")
	}
	for _, p := range results {
		if !box.Contains(p.Point()) {
			t.Errorf("POI %d outside box", p.ID)
		}
		found := false
		for _, k := range p.Keywords {
			if k == "restaurant" {
				found = true
			}
		}
		if !found {
			t.Errorf("POI %d missing keyword: %v", p.ID, p.Keywords)
		}
	}
	if _, _, err := repo.Search(SearchSpec{OrderBy: "bogus"}); err == nil {
		t.Error("bad order must fail")
	}
	// ResolvePOI implements the collector interface.
	p, ok := repo.ResolvePOI(model.Checkin{POIID: pois[3].ID})
	if !ok || p.ID != pois[3].ID {
		t.Error("ResolvePOI broken")
	}
}

func TestPOIRepoUpdateHotInOrdersSearch(t *testing.T) {
	repo, pois := newTestPOIRepo(t)
	if err := repo.UpdateHotIn(pois[0].ID, 0.99, 0.7); err != nil {
		t.Fatal(err)
	}
	if err := repo.UpdateHotIn(pois[1].ID, 0.5, 0.9); err != nil {
		t.Fatal(err)
	}
	if err := repo.UpdateHotIn(999999, 1, 1); err == nil {
		t.Error("missing POI must fail")
	}
	results, _, err := repo.Search(SearchSpec{OrderBy: "hotness", Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].ID != pois[0].ID {
		t.Errorf("hottest = %+v", results)
	}
	results, _, err = repo.Search(SearchSpec{OrderBy: "interest", Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].ID != pois[1].ID {
		t.Errorf("most interesting = %+v", results)
	}
}

func newTestVisitsRepo(t testing.TB, schema VisitSchema) *VisitsRepo {
	t.Helper()
	repo, err := NewVisitsRepo(schema, 1000, 8, 4, kvstore.DefaultStoreOptions())
	if err != nil {
		t.Fatal(err)
	}
	return repo
}

func TestVisitsRepoStoreScan(t *testing.T) {
	for _, schema := range []VisitSchema{SchemaReplicated, SchemaNormalized} {
		t.Run(schema.String(), func(t *testing.T) {
			repo := newTestVisitsRepo(t, schema)
			poi := model.POI{ID: 9, Name: "taverna-9", Lat: 37.9, Lon: 23.7, Keywords: []string{"restaurant"}}
			base := time.Date(2015, 5, 1, 12, 0, 0, 0, time.UTC)
			for i := 0; i < 10; i++ {
				v := model.Visit{
					UserID: 42, Time: model.Millis(base.Add(time.Duration(i) * time.Hour)),
					Grade: 4, Network: "facebook", POI: poi,
				}
				if err := repo.Store(v); err != nil {
					t.Fatal(err)
				}
			}
			// Another user's visits must not leak into scans.
			if err := repo.Store(model.Visit{UserID: 43, Time: model.Millis(base), Grade: 1, POI: poi}); err != nil {
				t.Fatal(err)
			}
			var got []model.Visit
			err := repo.ScanUser(42, model.Millis(base.Add(2*time.Hour)), model.Millis(base.Add(5*time.Hour)), func(v model.Visit) bool {
				got = append(got, v)
				return true
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != 4 {
				t.Fatalf("scan window returned %d visits, want 4", len(got))
			}
			for i, v := range got {
				if v.UserID != 42 {
					t.Fatal("foreign visit leaked into scan")
				}
				if i > 0 && v.Time < got[i-1].Time {
					t.Fatal("scan not time-ordered")
				}
				if schema == SchemaReplicated {
					if v.POI.Name != "taverna-9" {
						t.Error("replicated schema must carry POI info")
					}
				} else {
					if v.POI.Name != "" || v.POI.ID != 9 {
						t.Errorf("normalized schema must carry only the POI id: %+v", v.POI)
					}
				}
			}
			total := 0
			if err := repo.ScanAll(func(model.Visit) bool { total++; return true }); err != nil {
				t.Fatal(err)
			}
			if total != 11 {
				t.Errorf("ScanAll saw %d visits, want 11", total)
			}
		})
	}
}

func TestVisitsRepoValidation(t *testing.T) {
	repo := newTestVisitsRepo(t, SchemaReplicated)
	if err := repo.Store(model.Visit{UserID: 0, POI: model.POI{ID: 1}}); err == nil {
		t.Error("invalid user must fail")
	}
	if err := repo.Store(model.Visit{UserID: 1}); err == nil {
		t.Error("missing POI must fail")
	}
	if _, err := NewVisitsRepo(SchemaReplicated, 0, 4, 4, kvstore.DefaultStoreOptions()); err == nil {
		t.Error("bad maxUser must fail")
	}
	if _, err := NewVisitsRepo(SchemaReplicated, 100, 0, 4, kvstore.DefaultStoreOptions()); err == nil {
		t.Error("bad regions must fail")
	}
}

func TestVisitsRepoRegionDistribution(t *testing.T) {
	repo := newTestVisitsRepo(t, SchemaReplicated)
	if got := repo.Table().NumRegions(); got != 8 {
		t.Fatalf("regions = %d, want 8", got)
	}
	poi := model.POI{ID: 1, Name: "x"}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 400; i++ {
		uid := int64(rng.Intn(1000) + 1)
		if err := repo.Store(model.Visit{UserID: uid, Time: int64(i), Grade: 3, POI: poi}); err != nil {
			t.Fatal(err)
		}
	}
	// Every region should hold some data (uniform users over 8 ranges).
	for _, region := range repo.Table().Regions() {
		count := 0
		err := region.Store().Scan(kvstore.ScanOptions{}, func(kvstore.RowResult) bool { count++; return true })
		if err != nil {
			t.Fatal(err)
		}
		if count == 0 {
			t.Errorf("region [%q,%q) is empty", region.StartKey, region.EndKey())
		}
	}
}

func TestSocialInfoRepo(t *testing.T) {
	repo, err := NewSocialInfoRepo(1000, 4, 2, kvstore.DefaultStoreOptions())
	if err != nil {
		t.Fatal(err)
	}
	friends := []model.Friend{
		{ID: 1, Name: "a", Network: "facebook", Avatar: "u1"},
		{ID: 2, Name: "b", Network: "facebook", Avatar: "u2"},
		{ID: 3, Name: "c", Network: "twitter", Avatar: "u3"},
	}
	if err := repo.StoreFriends(42, friends); err != nil {
		t.Fatal(err)
	}
	fb, err := repo.Friends(42, "facebook")
	if err != nil {
		t.Fatal(err)
	}
	if len(fb) != 2 {
		t.Errorf("facebook friends = %d, want 2", len(fb))
	}
	all, err := repo.Friends(42, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Errorf("all friends = %d, want 3", len(all))
	}
	// Re-storing replaces (newest version wins).
	if err := repo.StoreFriends(42, friends[:1]); err != nil {
		t.Fatal(err)
	}
	fb, _ = repo.Friends(42, "facebook")
	if len(fb) != 1 {
		t.Errorf("after refresh facebook friends = %d, want 1", len(fb))
	}
	if err := repo.StoreFriends(0, friends); err == nil {
		t.Error("invalid user must fail")
	}
	none, err := repo.Friends(999, "")
	if err != nil || len(none) != 0 {
		t.Errorf("unknown user friends = %v, %v", none, err)
	}
}

func TestTextRepo(t *testing.T) {
	repo, err := NewTextRepo(10000, 4, 2, kvstore.DefaultStoreOptions())
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2015, 5, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 5; i++ {
		c := model.Comment{
			UserID: 7, POIID: 99, Time: model.Millis(base.Add(time.Duration(i) * time.Hour)),
			Text: fmt.Sprintf("comment %d", i), Grade: 3.5,
		}
		if err := repo.StoreComment(c); err != nil {
			t.Fatal(err)
		}
	}
	// Different user and different POI must not appear.
	if err := repo.StoreComment(model.Comment{UserID: 8, POIID: 99, Time: model.Millis(base), Text: "other user"}); err != nil {
		t.Fatal(err)
	}
	if err := repo.StoreComment(model.Comment{UserID: 7, POIID: 100, Time: model.Millis(base), Text: "other poi"}); err != nil {
		t.Fatal(err)
	}
	got, err := repo.Comments(99, 7, model.Millis(base.Add(time.Hour)), model.Millis(base.Add(3*time.Hour)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("comments = %d, want 3", len(got))
	}
	for i, c := range got {
		if c.UserID != 7 || c.POIID != 99 {
			t.Fatal("scan leaked other keys")
		}
		if i > 0 && c.Time < got[i-1].Time {
			t.Fatal("comments not time-ordered")
		}
	}
	if err := repo.StoreComment(model.Comment{}); err == nil {
		t.Error("invalid comment must fail")
	}
}

func TestGPSRepo(t *testing.T) {
	repo, err := NewGPSRepo(1000, 4, 2, kvstore.DefaultStoreOptions())
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2015, 5, 1, 8, 0, 0, 0, time.UTC)
	var fixes []model.GPSFix
	for i := 0; i < 20; i++ {
		fixes = append(fixes, model.GPSFix{
			UserID: 5, Lat: 37.9 + float64(i)*0.001, Lon: 23.7, Time: model.Millis(base.Add(time.Duration(i) * time.Minute)),
		})
	}
	if err := repo.PushBatch(fixes); err != nil {
		t.Fatal(err)
	}
	if err := repo.Push(model.GPSFix{UserID: 6, Lat: 38, Lon: 23, Time: model.Millis(base)}); err != nil {
		t.Fatal(err)
	}
	n, err := repo.Len()
	if err != nil || n != 21 {
		t.Fatalf("Len = %d, %v", n, err)
	}
	var got []model.GPSFix
	err = repo.ScanUser(5, model.Millis(base.Add(5*time.Minute)), model.Millis(base.Add(10*time.Minute)), func(f model.GPSFix) bool {
		got = append(got, f)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 {
		t.Errorf("windowed scan = %d fixes, want 6", len(got))
	}
	if err := repo.Push(model.GPSFix{UserID: 0}); err == nil {
		t.Error("invalid user must fail")
	}
}

func TestBlogsRepo(t *testing.T) {
	db := relstore.NewDB()
	repo, err := NewBlogsRepo(db)
	if err != nil {
		t.Fatal(err)
	}
	day := time.Date(2015, 5, 31, 0, 0, 0, 0, time.UTC)
	visits := []trajectory.Visit{
		{
			Stay:    trajectory.StayPoint{Center: geo.Point{Lat: 37.98, Lon: 23.72}, Arrival: day.Add(10 * time.Hour), Departure: day.Add(11 * time.Hour), Fixes: 10},
			POI:     trajectory.POIRef{ID: 1, Name: "Syntagma Square", Pt: geo.Point{Lat: 37.98, Lon: 23.72}},
			Matched: true,
		},
	}
	blog := trajectory.BuildBlog(42, day, visits)
	stored, err := repo.Save(blog)
	if err != nil {
		t.Fatal(err)
	}
	if stored.ID == 0 || stored.UserID != 42 || len(stored.Entries) != 1 {
		t.Fatalf("stored = %+v", stored)
	}
	got, ok, err := repo.Get(42, day.Add(13*time.Hour)) // any time that day
	if err != nil || !ok {
		t.Fatalf("Get = %v %v", ok, err)
	}
	if got.ID != stored.ID || got.Entries[0].POI.Name != "Syntagma Square" {
		t.Errorf("got = %+v", got)
	}
	// Saving the same day replaces, not duplicates.
	if err := blog.Annotate(0, "lovely morning"); err != nil {
		t.Fatal(err)
	}
	stored2, err := repo.Save(blog)
	if err != nil {
		t.Fatal(err)
	}
	if stored2.ID != stored.ID {
		t.Errorf("resave must keep id %d, got %d", stored.ID, stored2.ID)
	}
	list, err := repo.ListUser(42)
	if err != nil || len(list) != 1 {
		t.Fatalf("ListUser = %v, %v", list, err)
	}
	// Share flag.
	if err := repo.MarkShared(stored.ID); err != nil {
		t.Fatal(err)
	}
	got, _, _ = repo.Get(42, day)
	if !got.Shared {
		t.Error("blog must be marked shared")
	}
	if err := repo.MarkShared(999); err == nil {
		t.Error("missing blog must fail")
	}
	// Sharing survives a resave.
	if _, err := repo.Save(blog); err != nil {
		t.Fatal(err)
	}
	got, _, _ = repo.Get(42, day)
	if !got.Shared {
		t.Error("share flag must survive resave")
	}
	if _, ok, _ := repo.Get(42, day.Add(48*time.Hour)); ok {
		t.Error("different day must be absent")
	}
	if _, err := repo.Save(nil); err == nil {
		t.Error("nil blog must fail")
	}
}

func TestSinkBinding(t *testing.T) {
	social, err := NewSocialInfoRepo(100, 2, 2, kvstore.DefaultStoreOptions())
	if err != nil {
		t.Fatal(err)
	}
	texts, err := NewTextRepo(100, 2, 2, kvstore.DefaultStoreOptions())
	if err != nil {
		t.Fatal(err)
	}
	visits := newTestVisitsRepo(t, SchemaReplicated)
	sink, err := NewSink(social, texts, visits)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.StoreFriends(1, []model.Friend{{ID: 2, Network: "facebook"}}); err != nil {
		t.Fatal(err)
	}
	if err := sink.StoreComment(model.Comment{UserID: 1, POIID: 2, Time: 5, Text: "hi"}); err != nil {
		t.Fatal(err)
	}
	if err := sink.StoreVisit(model.Visit{UserID: 1, Time: 5, POI: model.POI{ID: 2}}); err != nil {
		t.Fatal(err)
	}
	if _, err := NewSink(nil, texts, visits); err == nil {
		t.Error("nil repo must fail")
	}
}

func TestVisitsRepoDurableRecovery(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "visits.wal")
	poi := model.POI{ID: 3, Name: "taverna-3", Lat: 37.9, Lon: 23.7, Keywords: []string{"restaurant"}}

	// First life.
	tbl, err := kvstore.OpenDurableTable("visits", userSplitKeys(100, 4), 2, kvstore.DefaultStoreOptions(), walPath)
	if err != nil {
		t.Fatal(err)
	}
	repo, err := NewVisitsRepoFromTable(SchemaReplicated, tbl)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := repo.Store(model.Visit{UserID: int64(i%5 + 1), Time: int64(i * 1000), Grade: 4, POI: poi}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.Close(); err != nil {
		t.Fatal(err)
	}

	// Second life: everything is back and scannable.
	tbl2, err := kvstore.OpenDurableTable("visits", userSplitKeys(100, 4), 2, kvstore.DefaultStoreOptions(), walPath)
	if err != nil {
		t.Fatal(err)
	}
	defer tbl2.Close()
	repo2, err := NewVisitsRepoFromTable(SchemaReplicated, tbl2)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	if err := repo2.ScanAll(func(v model.Visit) bool {
		if v.POI.Name != "taverna-3" {
			t.Fatal("recovered visit lost its POI payload")
		}
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != 20 {
		t.Errorf("recovered %d visits, want 20", count)
	}
	if _, err := NewVisitsRepoFromTable(SchemaReplicated, nil); err == nil {
		t.Error("nil table must fail")
	}
}
