package repos

import (
	"reflect"
	"sort"
	"testing"
	"time"

	"modissense/internal/model"
)

// TestVisitsRepoMixedJSONBinaryDecode stores rows under both payload
// formats in one repository — the state a store reaches after a WAL replay
// of pre-codec JSON data followed by new binary writes — and checks scans
// decode every row identically.
func TestVisitsRepoMixedJSONBinaryDecode(t *testing.T) {
	for _, schema := range []VisitSchema{SchemaReplicated, SchemaNormalized} {
		t.Run(schema.String(), func(t *testing.T) {
			repo := newTestVisitsRepo(t, schema)
			poi := model.POI{ID: 7, Name: "plaka-cafe", Lat: 37.97, Lon: 23.73, Keywords: []string{"cafe", "view"}}
			base := time.Date(2015, 5, 1, 8, 0, 0, 0, time.UTC)
			want := make([]model.Visit, 0, 8)
			// First half: legacy JSON writes (the pre-codec deployment).
			repo.UseLegacyJSON()
			for i := 0; i < 4; i++ {
				v := model.Visit{UserID: 11, Time: model.Millis(base.Add(time.Duration(i) * time.Minute)), Grade: float64(i + 1), Network: "twitter", POI: poi}
				if err := repo.Store(v); err != nil {
					t.Fatal(err)
				}
				want = append(want, v)
			}
			// Second half: current binary writes on the same table.
			repo.legacyJSON = false
			for i := 4; i < 8; i++ {
				v := model.Visit{UserID: 11, Time: model.Millis(base.Add(time.Duration(i) * time.Minute)), Grade: float64(i + 1), Network: "twitter", POI: poi}
				if err := repo.Store(v); err != nil {
					t.Fatal(err)
				}
				want = append(want, v)
			}
			if schema == SchemaNormalized {
				for i := range want {
					want[i].POI = model.POI{ID: poi.ID}
				}
			}
			var got []model.Visit
			if err := repo.ScanAll(func(v model.Visit) bool { got = append(got, v); return true }); err != nil {
				t.Fatal(err)
			}
			sort.Slice(got, func(i, j int) bool { return got[i].Time < got[j].Time })
			if !reflect.DeepEqual(got, want) {
				t.Errorf("mixed-format scan:\ngot  %+v\nwant %+v", got, want)
			}
		})
	}
}

// TestPutPaddedFallback checks the allocation-free key builders agree with
// their fmt formulations, including out-of-range fallbacks.
func TestPutPaddedFallback(t *testing.T) {
	if UserKeyPrefix(42) != "u000000000042|" {
		t.Errorf("UserKeyPrefix(42) = %q", UserKeyPrefix(42))
	}
	if got := visitRowKey(999999999999, 9999999999999, 999999); got != "u999999999999|t9999999999999|999999" {
		t.Errorf("max in-range key = %q", got)
	}
	// Out-of-range values (negative timestamps in hand-built specs) fall
	// back to fmt and still round-trip.
	k := visitRowKey(5, -5, 0)
	if u, ts, _, err := parseVisitRowKey(k); err != nil || u != 5 || ts != -5 {
		t.Errorf("fallback key %q parsed to %d %d %v", k, u, ts, err)
	}
}
