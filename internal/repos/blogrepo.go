package repos

import (
	"fmt"
	"sync/atomic"
	"time"

	"modissense/internal/model"
	"modissense/internal/relstore"
	"modissense/internal/trajectory"
)

// BlogsRepo stores generated daily blogs on the relational store: blogs
// are frequently queried by users but rarely updated, the same access
// profile as POIs.
type BlogsRepo struct {
	table  *relstore.Table
	nextID atomic.Int64
}

const (
	blogColID = iota
	blogColUser
	blogColDay // days since epoch, UTC
	blogColTitle
	blogColRendered
	blogColEntries // JSON-encoded visits for re-editing
	blogColShared
)

// NewBlogsRepo creates the repository with an index on the owning user.
func NewBlogsRepo(db *relstore.DB) (*BlogsRepo, error) {
	schema, err := relstore.NewSchema(
		relstore.Column{Name: "id", Type: relstore.Int},
		relstore.Column{Name: "user_id", Type: relstore.Int},
		relstore.Column{Name: "day", Type: relstore.Int},
		relstore.Column{Name: "title", Type: relstore.Text},
		relstore.Column{Name: "rendered", Type: relstore.Text},
		relstore.Column{Name: "entries", Type: relstore.Text},
		relstore.Column{Name: "shared", Type: relstore.Bool},
	)
	if err != nil {
		return nil, err
	}
	table, err := db.CreateTable("blogs", schema)
	if err != nil {
		return nil, err
	}
	if err := table.CreateIndex("user_id"); err != nil {
		return nil, err
	}
	return &BlogsRepo{table: table}, nil
}

// StoredBlog is the repository view of a blog.
type StoredBlog struct {
	ID       int64              `json:"id"`
	UserID   int64              `json:"user_id"`
	Day      time.Time          `json:"day"`
	Title    string             `json:"title"`
	Rendered string             `json:"rendered"`
	Entries  []trajectory.Visit `json:"entries"`
	Shared   bool               `json:"shared"`
}

func dayNumber(t time.Time) int64 {
	return t.UTC().Unix() / 86400
}

// Save persists (or replaces) the blog of (user, day).
func (r *BlogsRepo) Save(b *trajectory.Blog) (StoredBlog, error) {
	if b == nil {
		return StoredBlog{}, fmt.Errorf("repos: nil blog")
	}
	existing, ok, err := r.Get(b.UserID, b.Date)
	if err != nil {
		return StoredBlog{}, err
	}
	id := r.nextID.Add(1)
	if ok {
		id = existing.ID
	}
	row := relstore.Row{
		relstore.IntVal(id),
		relstore.IntVal(b.UserID),
		relstore.IntVal(dayNumber(b.Date)),
		relstore.TextVal(b.Title),
		relstore.TextVal(b.Render()),
		relstore.TextVal(string(model.EncodeJSON(b.Entries))),
		relstore.BoolVal(ok && existing.Shared),
	}
	if ok {
		err = r.table.Update(row)
	} else {
		err = r.table.Insert(row)
	}
	if err != nil {
		return StoredBlog{}, err
	}
	return r.rowToBlog(row)
}

// Get returns the blog of (user, day) if present.
func (r *BlogsRepo) Get(userID int64, day time.Time) (StoredBlog, bool, error) {
	rows, _, err := r.table.Select(relstore.Query{Where: []relstore.Predicate{
		{Column: "user_id", Op: relstore.Eq, Arg: relstore.IntVal(userID)},
		{Column: "day", Op: relstore.Eq, Arg: relstore.IntVal(dayNumber(day))},
	}})
	if err != nil {
		return StoredBlog{}, false, err
	}
	if len(rows) == 0 {
		return StoredBlog{}, false, nil
	}
	b, err := r.rowToBlog(rows[0])
	return b, err == nil, err
}

// ListUser returns all blogs of a user, newest day first.
func (r *BlogsRepo) ListUser(userID int64) ([]StoredBlog, error) {
	rows, _, err := r.table.Select(relstore.Query{
		Where:   []relstore.Predicate{{Column: "user_id", Op: relstore.Eq, Arg: relstore.IntVal(userID)}},
		OrderBy: "day",
		Desc:    true,
	})
	if err != nil {
		return nil, err
	}
	out := make([]StoredBlog, 0, len(rows))
	for _, row := range rows {
		b, err := r.rowToBlog(row)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}

// MarkShared flags the blog as posted to a social network.
func (r *BlogsRepo) MarkShared(blogID int64) error {
	row, ok := r.table.Get(blogID)
	if !ok {
		return fmt.Errorf("repos: no blog %d", blogID)
	}
	row[blogColShared] = relstore.BoolVal(true)
	return r.table.Update(row)
}

func (r *BlogsRepo) rowToBlog(row relstore.Row) (StoredBlog, error) {
	var entries []trajectory.Visit
	if s := row[blogColEntries].S; s != "" && s != "null" {
		if err := model.DecodeJSON([]byte(s), &entries); err != nil {
			return StoredBlog{}, err
		}
	}
	return StoredBlog{
		ID:       row[blogColID].I,
		UserID:   row[blogColUser].I,
		Day:      time.Unix(row[blogColDay].I*86400, 0).UTC(),
		Title:    row[blogColTitle].S,
		Rendered: row[blogColRendered].S,
		Entries:  entries,
		Shared:   row[blogColShared].B,
	}, nil
}
