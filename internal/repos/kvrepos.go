package repos

import (
	"context"
	"fmt"
	"sync/atomic"

	"modissense/internal/kvstore"
	"modissense/internal/model"
)

// SocialInfoRepo holds each user's per-network friend lists as one row per
// user with one qualifier per network (a compressed id/name/avatar list).
type SocialInfoRepo struct {
	table *kvstore.Table
	clock atomic.Int64
}

// NewSocialInfoRepo creates the repository.
func NewSocialInfoRepo(maxUser int64, regions, nodes int, opts kvstore.StoreOptions) (*SocialInfoRepo, error) {
	table, err := kvstore.NewTable("socialinfo", userSplitKeys(maxUser, regions), nodes, opts)
	if err != nil {
		return nil, err
	}
	return &SocialInfoRepo{table: table}, nil
}

// StoreFriends persists a user's aggregated friend list, bucketed by
// network (implements the collector Sink contract together with the other
// repos via repos.Sink).
func (r *SocialInfoRepo) StoreFriends(userID int64, friends []model.Friend) error {
	if userID < 1 {
		return fmt.Errorf("repos: invalid user %d", userID)
	}
	byNetwork := map[string][]model.Friend{}
	for _, f := range friends {
		byNetwork[f.Network] = append(byNetwork[f.Network], f)
	}
	ts := r.clock.Add(1)
	for network, fs := range byNetwork {
		if err := r.table.Put(socialRowKey(userID), network, ts, model.EncodeJSON(fs)); err != nil {
			return err
		}
	}
	return nil
}

// Friends returns the user's friends on one network ("" = all networks).
func (r *SocialInfoRepo) Friends(userID int64, network string) ([]model.Friend, error) {
	row, err := r.table.Get(socialRowKey(userID))
	if err != nil {
		return nil, err
	}
	var out []model.Friend
	for _, cell := range row.Cells {
		if network != "" && cell.Qualifier != network {
			continue
		}
		var fs []model.Friend
		if err := model.DecodeJSON(cell.Value, &fs); err != nil {
			return nil, err
		}
		out = append(out, fs...)
	}
	return out, nil
}

// TextRepo stores every collected comment, keyed (poi, user, time) so the
// canonical lookup — "the comments a specified user made about a POI in a
// time interval" — is a single range scan.
type TextRepo struct {
	table *kvstore.Table
}

// NewTextRepo creates the repository. Text rows lead with the POI id, so
// the table is split into `regions` uniform key ranges over the id space.
func NewTextRepo(maxPOI int64, regions, nodes int, opts kvstore.StoreOptions) (*TextRepo, error) {
	var splits []string
	if regions > 1 {
		for i := 1; i < regions; i++ {
			splits = append(splits, fmt.Sprintf("p%012d|", maxPOI*int64(i)/int64(regions)))
		}
	}
	table, err := kvstore.NewTable("texts", splits, nodes, opts)
	if err != nil {
		return nil, err
	}
	return &TextRepo{table: table}, nil
}

// StoreComment persists one classified comment.
func (r *TextRepo) StoreComment(c model.Comment) error {
	if c.POIID < 1 || c.UserID < 1 {
		return fmt.Errorf("repos: comment missing poi/user: %+v", c)
	}
	return r.table.Put(textRowKey(c.POIID, c.UserID, c.Time), "c", c.Time, model.EncodeJSON(c))
}

// Comments returns the comments of one user about one POI in
// [fromMillis, toMillis], oldest first.
func (r *TextRepo) Comments(poiID, userID, fromMillis, toMillis int64) ([]model.Comment, error) {
	start, stop := textScanBounds(poiID, userID, fromMillis, toMillis)
	var out []model.Comment
	var decodeErr error
	err := r.table.Scan(kvstore.ScanOptions{StartRow: start, StopRow: stop}, func(row kvstore.RowResult) bool {
		raw, ok := row.Get("c")
		if !ok {
			return true
		}
		var c model.Comment
		if decodeErr = model.DecodeJSON(raw, &c); decodeErr != nil {
			return false
		}
		out = append(out, c)
		return true
	})
	if decodeErr != nil {
		return nil, decodeErr
	}
	return out, err
}

// GPSRepo stores raw GPS traces. The repository absorbs a high update rate
// and is only ever read in bulk by the event-detection and blog pipelines,
// so it carries no secondary indexes — exactly the trade the paper makes.
type GPSRepo struct {
	table *kvstore.Table
	seq   atomic.Uint32
}

// NewGPSRepo creates the repository.
func NewGPSRepo(maxUser int64, regions, nodes int, opts kvstore.StoreOptions) (*GPSRepo, error) {
	table, err := kvstore.NewTable("gpstraces", userSplitKeys(maxUser, regions), nodes, opts)
	if err != nil {
		return nil, err
	}
	return &GPSRepo{table: table}, nil
}

// Push appends one fix.
func (r *GPSRepo) Push(f model.GPSFix) error {
	if f.UserID < 1 {
		return fmt.Errorf("repos: gps fix with invalid user %d", f.UserID)
	}
	return r.table.Put(gpsRowKey(f.UserID, f.Time, r.seq.Add(1)), "g", f.Time, model.EncodeJSON(f))
}

// PushBatch appends many fixes.
func (r *GPSRepo) PushBatch(fixes []model.GPSFix) error {
	for _, f := range fixes {
		if err := r.Push(f); err != nil {
			return err
		}
	}
	return nil
}

// ScanAll streams every stored fix (the event-detection input).
func (r *GPSRepo) ScanAll(fn func(model.GPSFix) bool) error {
	return r.ScanAllCtx(context.Background(), fn)
}

// ScanAllCtx is ScanAll with row-granular cancellation: it returns ctx's
// error as soon as the context is done, even mid-region.
func (r *GPSRepo) ScanAllCtx(ctx context.Context, fn func(model.GPSFix) bool) error {
	return r.scanRange(ctx, "", "", fn)
}

// ScanUser streams one user's fixes within [fromMillis, toMillis] in time
// order (the blog pipeline's input).
func (r *GPSRepo) ScanUser(userID, fromMillis, toMillis int64, fn func(model.GPSFix) bool) error {
	start := fmt.Sprintf("u%012d|t%013d|", userID, fromMillis)
	stop := fmt.Sprintf("u%012d|t%013d|", userID, toMillis+1)
	return r.scanRange(context.Background(), start, stop, fn)
}

func (r *GPSRepo) scanRange(ctx context.Context, start, stop string, fn func(model.GPSFix) bool) error {
	var decodeErr error
	err := r.table.ScanCtx(ctx, kvstore.ScanOptions{StartRow: start, StopRow: stop}, func(row kvstore.RowResult) bool {
		raw, ok := row.Get("g")
		if !ok {
			return true
		}
		var f model.GPSFix
		if decodeErr = model.DecodeJSON(raw, &f); decodeErr != nil {
			return false
		}
		return fn(f)
	})
	if decodeErr != nil {
		return decodeErr
	}
	return err
}

// Len returns the number of stored fixes (scan-counted; used by tests and
// admin stats, not hot paths).
func (r *GPSRepo) Len() (int, error) {
	n := 0
	err := r.ScanAll(func(model.GPSFix) bool { n++; return true })
	return n, err
}
