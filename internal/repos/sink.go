package repos

import (
	"fmt"

	"modissense/internal/model"
)

// Sink binds the Social-Info, Text and Visits repositories into the Data
// Collection module's output interface.
type Sink struct {
	Social *SocialInfoRepo
	Texts  *TextRepo
	Visits *VisitsRepo
}

// NewSink validates and builds the sink.
func NewSink(social *SocialInfoRepo, texts *TextRepo, visits *VisitsRepo) (*Sink, error) {
	if social == nil || texts == nil || visits == nil {
		return nil, fmt.Errorf("repos: sink repositories must be non-nil")
	}
	return &Sink{Social: social, Texts: texts, Visits: visits}, nil
}

// StoreFriends implements social.Sink.
func (s *Sink) StoreFriends(userID int64, friends []model.Friend) error {
	return s.Social.StoreFriends(userID, friends)
}

// StoreComment implements social.Sink.
func (s *Sink) StoreComment(c model.Comment) error {
	return s.Texts.StoreComment(c)
}

// StoreVisit implements social.Sink.
func (s *Sink) StoreVisit(v model.Visit) error {
	return s.Visits.Store(v)
}
