package repos

import (
	"fmt"
	"sync/atomic"

	"modissense/internal/kvstore"
	"modissense/internal/model"
)

// VisitSchema selects the Visits repository storage layout.
type VisitSchema int

const (
	// SchemaReplicated embeds the complete POI record in every visit row —
	// the design the paper adopted ("our experiments suggest data
	// replication to be more efficient").
	SchemaReplicated VisitSchema = iota
	// SchemaNormalized stores only the POI id and joins POI information at
	// query time — the alternative the paper rejected; kept for the
	// ablation experiment.
	SchemaNormalized
)

// String implements fmt.Stringer.
func (s VisitSchema) String() string {
	if s == SchemaNormalized {
		return "normalized"
	}
	return "replicated"
}

// VisitQualifier is the single column a visit row stores; coprocessors
// read it directly during region-local scans.
const VisitQualifier = "v"

// normalizedVisit is the compact payload of the normalized schema.
type normalizedVisit struct {
	UserID  int64   `json:"user_id"`
	Time    int64   `json:"time"`
	Grade   float64 `json:"grade"`
	Network string  `json:"network"`
	POIID   int64   `json:"poi_id"`
}

// VisitsRepo is the Visits repository: one row per (user, time, seq) visit
// on the range-partitioned KV store. Under the replicated schema the visit
// struct carries full POI info; under the normalized schema readers must
// join against the POI repository.
//
// New rows are written with the compact binary visit codec (model.codec);
// rows written by older deployments carry JSON payloads, and the decode
// path accepts both indefinitely — a WAL replay of pre-codec data keeps
// working. UseLegacyJSON pins a repository to JSON writes, which the
// benchmarks use to measure the codec against its baseline.
type VisitsRepo struct {
	table      *kvstore.Table
	schema     VisitSchema
	seq        atomic.Uint32
	legacyJSON bool
	// onStore, when set, observes every batch after it commits — the
	// platform hooks the pub/sub matcher here so both API ingest and the
	// collector publish to standing subscriptions. Set once at wiring time,
	// before the repository serves concurrent writes.
	onStore func([]model.Visit)
}

// SetOnStore installs a post-commit observer invoked with every stored
// visit batch (single Stores arrive as one-element batches). The hook runs
// synchronously on the writer's goroutine after the table write succeeds;
// it must be fast and must not call back into the repository. Install it
// during wiring, before concurrent writes start.
func (r *VisitsRepo) SetOnStore(fn func([]model.Visit)) { r.onStore = fn }

// NewVisitsRepo creates the repository over a table pre-split into
// `regions` user ranges placed round-robin on `nodes` simulated nodes.
func NewVisitsRepo(schema VisitSchema, maxUser int64, regions, nodes int, opts kvstore.StoreOptions) (*VisitsRepo, error) {
	if maxUser < 1 {
		return nil, fmt.Errorf("repos: maxUser must be >= 1, got %d", maxUser)
	}
	if regions < 1 {
		return nil, fmt.Errorf("repos: regions must be >= 1, got %d", regions)
	}
	table, err := kvstore.NewTable("visits-"+schema.String(), userSplitKeys(maxUser, regions), nodes, opts)
	if err != nil {
		return nil, err
	}
	return &VisitsRepo{table: table, schema: schema}, nil
}

// NewDurableVisitsRepo is NewVisitsRepo over a durable table: every visit is
// group-committed to the WAL at walPath before it applies, and opening an
// existing log replays it (see kvstore.OpenDurableTable). Close the backing
// Table() to release the log.
func NewDurableVisitsRepo(schema VisitSchema, maxUser int64, regions, nodes int, opts kvstore.StoreOptions, walPath string) (*VisitsRepo, error) {
	if maxUser < 1 {
		return nil, fmt.Errorf("repos: maxUser must be >= 1, got %d", maxUser)
	}
	if regions < 1 {
		return nil, fmt.Errorf("repos: regions must be >= 1, got %d", regions)
	}
	table, err := kvstore.OpenDurableTable("visits-"+schema.String(), userSplitKeys(maxUser, regions), nodes, opts, walPath)
	if err != nil {
		return nil, err
	}
	return &VisitsRepo{table: table, schema: schema}, nil
}

// Schema returns the storage layout.
func (r *VisitsRepo) Schema() VisitSchema { return r.schema }

// UseLegacyJSON makes future Store calls write the pre-codec JSON payloads
// instead of the binary encoding. Reads are unaffected (both always
// decode); this exists for the codec ablation benchmarks and for producing
// mixed-format fixtures.
func (r *VisitsRepo) UseLegacyJSON() { r.legacyJSON = true }

// Table exposes the backing table for coprocessor fan-out.
func (r *VisitsRepo) Table() *kvstore.Table { return r.table }

// visitCell validates one visit and renders it as the cell Store/StoreBatch
// would write.
func (r *VisitsRepo) visitCell(v model.Visit) (kvstore.Cell, error) {
	if v.UserID < 1 {
		return kvstore.Cell{}, fmt.Errorf("repos: visit with invalid user %d", v.UserID)
	}
	if v.POI.ID == 0 {
		return kvstore.Cell{}, fmt.Errorf("repos: visit without POI")
	}
	key := visitRowKey(v.UserID, v.Time, r.seq.Add(1))
	var payload []byte
	switch {
	case r.legacyJSON && r.schema == SchemaReplicated:
		payload = model.EncodeJSON(v)
	case r.legacyJSON:
		payload = model.EncodeJSON(normalizedVisit{
			UserID: v.UserID, Time: v.Time, Grade: v.Grade, Network: v.Network, POIID: v.POI.ID,
		})
	case r.schema == SchemaReplicated:
		payload = model.EncodeVisitBinary(&v)
	default:
		payload = model.EncodeVisitBinaryNormalized(&v)
	}
	return kvstore.Cell{Row: key, Qualifier: VisitQualifier, Timestamp: v.Time, Value: payload}, nil
}

// Store persists one visit.
func (r *VisitsRepo) Store(v model.Visit) error {
	c, err := r.visitCell(v)
	if err != nil {
		return err
	}
	if err := r.table.Put(c.Row, c.Qualifier, c.Timestamp, c.Value); err != nil {
		return err
	}
	if r.onStore != nil {
		r.onStore([]model.Visit{v})
	}
	return nil
}

// StoreBatch persists a batch of visits through one table PutBatch: the
// whole batch costs one WAL commit-group slot and one store-lock acquisition
// per contiguous region run, which is what makes batched check-in ingest
// cheap. Validation runs up front — an invalid visit fails the call (with
// its index) before anything is logged or applied.
func (r *VisitsRepo) StoreBatch(visits []model.Visit) error {
	if len(visits) == 0 {
		return nil
	}
	cells := make([]kvstore.Cell, len(visits))
	for i := range visits {
		c, err := r.visitCell(visits[i])
		if err != nil {
			return fmt.Errorf("repos: batch item %d: %w", i, err)
		}
		cells[i] = c
	}
	if err := r.table.PutBatch(cells); err != nil {
		return err
	}
	if r.onStore != nil {
		r.onStore(visits)
	}
	return nil
}

// DecodeVisit decodes a stored visit row, binary or legacy JSON — the tag
// byte distinguishes the two, so mixed stores (old JSON rows replayed from
// a WAL next to new binary rows) decode transparently. Under the normalized
// schema the returned Visit carries only POI.ID; the caller joins the rest.
func DecodeVisit(schema VisitSchema, value []byte) (model.Visit, error) {
	if model.IsVisitBinary(value) {
		return model.DecodeVisitBinary(value)
	}
	if schema == SchemaReplicated {
		var v model.Visit
		if err := model.DecodeJSON(value, &v); err != nil {
			return model.Visit{}, err
		}
		return v, nil
	}
	var n normalizedVisit
	if err := model.DecodeJSON(value, &n); err != nil {
		return model.Visit{}, err
	}
	return model.Visit{
		UserID: n.UserID, Time: n.Time, Grade: n.Grade, Network: n.Network,
		POI: model.POI{ID: n.POIID},
	}, nil
}

// ScanUser streams one user's visits within [fromMillis, toMillis] in time
// order. It exercises the same key-range scan a coprocessor performs
// region-locally.
func (r *VisitsRepo) ScanUser(userID, fromMillis, toMillis int64, fn func(model.Visit) bool) error {
	start, stop := VisitScanBounds(userID, fromMillis, toMillis)
	var decodeErr error
	err := r.table.Scan(kvstore.ScanOptions{StartRow: start, StopRow: stop}, func(row kvstore.RowResult) bool {
		raw, ok := row.Get(VisitQualifier)
		if !ok {
			return true
		}
		v, err := DecodeVisit(r.schema, raw)
		if err != nil {
			decodeErr = err
			return false
		}
		return fn(v)
	})
	if decodeErr != nil {
		return decodeErr
	}
	return err
}

// ScanAll streams every stored visit (the HotIn job's input).
func (r *VisitsRepo) ScanAll(fn func(model.Visit) bool) error {
	var decodeErr error
	err := r.table.Scan(kvstore.ScanOptions{}, func(row kvstore.RowResult) bool {
		raw, ok := row.Get(VisitQualifier)
		if !ok {
			return true
		}
		v, err := DecodeVisit(r.schema, raw)
		if err != nil {
			decodeErr = err
			return false
		}
		return fn(v)
	})
	if decodeErr != nil {
		return decodeErr
	}
	return err
}

// NewVisitsRepoFromTable wraps an existing table (e.g. a durable one from
// kvstore.OpenDurableTable) as a Visits repository. The table's key layout
// must follow this package's visit row-key encoding — which holds for any
// table previously populated through a VisitsRepo.
func NewVisitsRepoFromTable(schema VisitSchema, table *kvstore.Table) (*VisitsRepo, error) {
	if table == nil {
		return nil, fmt.Errorf("repos: nil table")
	}
	return &VisitsRepo{table: table, schema: schema}, nil
}
