module modissense

go 1.22
