// Command modissense-server boots a MoDisSENSE platform instance and
// serves its REST API.
//
// Usage:
//
//	modissense-server -addr :8080 -nodes 4 -pois 800 -population 2000
//
// Then, for example:
//
//	curl -s -X POST localhost:8080/api/signin \
//	     -d '{"network":"facebook","credentials":"facebook:1"}'
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"modissense/internal/core"
	"modissense/internal/exec"
	"modissense/internal/repos"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	nodes := flag.Int("nodes", 4, "simulated worker nodes")
	regionsPerNode := flag.Int("regions-per-node", 4, "visits-table regions per node")
	pois := flag.Int("pois", 800, "POI catalog size")
	population := flag.Int("population", 2000, "users per simulated social network")
	seed := flag.Int64("seed", 1, "master random seed")
	normalized := flag.Bool("normalized-schema", false, "use the normalized (join-at-query-time) visits schema")
	queryTimeout := flag.Duration("query-timeout", 30*time.Second, "per-request query deadline (0 = none); expiry answers 504")
	scatterWorkers := flag.Int("scatter-workers", 0, "scatter-gather worker-pool size (0 = GOMAXPROCS)")
	readReplicas := flag.Int("read-replicas", 0, "read-only replicas per visits region (0 = no replication)")
	readAttempts := flag.Int("read-attempts", 0, "per-region read attempt budget (0 = plain fail-fast reads)")
	readBackoff := flag.Duration("read-backoff", 0, "base retry backoff of the fault-tolerant read path (0 = 2ms default)")
	readHedgeAfter := flag.Duration("read-hedge-after", 0, "enable latency hedging, capped at this threshold (0 = no hedging)")
	allowDegraded := flag.Bool("allow-degraded", false, "answer partial results when a region exhausts its read attempts")
	admitQPS := flag.Float64("admit-qps", 0, "interactive admission rate in requests/s; batch routes get half (0 = no rate limiting)")
	admitBurst := flag.Int("admit-burst", 0, "interactive admission token-bucket depth (0 = derived from -admit-qps)")
	execQueueCap := flag.Int("exec-queue-cap", 0, "bound on the exec pool's waiter queue; enables deadline-aware admission (0 = unbounded)")
	retryBudget := flag.Float64("retry-budget", 0, "retries+hedges allowed per primary read attempt, e.g. 0.1 (0 = unthrottled)")
	breakerFailures := flag.Int("breaker-failures", 0, "consecutive node failures that trip a circuit breaker (0 = breakers off)")
	breakerOpenFor := flag.Duration("breaker-open-for", 0, "base breaker open interval before the first half-open probe (0 = 500ms default)")
	breakerSlowAfter := flag.Duration("breaker-slow-after", 0, "charge read attempts still running after this duration as failures (0 = off)")
	failover := flag.Bool("failover", false, "enable write-path failover: failure detection, replica promotion with epoch fencing, rejoin (requires -read-replicas >= 1)")
	suspectAfter := flag.Int("suspect-after", 0, "consecutive node failures before the failure detector marks it suspect (0 = default, 3)")
	downAfter := flag.Int("down-after", 0, "consecutive node failures before the detector downs the node and promotes (0 = default, 6)")
	walDir := flag.String("wal-dir", "", "directory for the durable visits WAL (empty = in-memory, no recovery)")
	walSync := flag.String("wal-sync", "os", "WAL durability policy: os (buffered) or group (one fsync per commit group)")
	compactRate := flag.Float64("compact-rate-mb", 0, "background-compaction I/O cap in MB/s (0 = unlimited)")
	memtableFlush := flag.Int("memtable-flush-bytes", 0, "per-region memtable size that triggers rotation and background flush (0 = engine default)")
	writeQPS := flag.Float64("write-qps", 0, "write-class admission rate in requests/s for batched check-ins (0 = no rate limiting)")
	writeBurst := flag.Int("write-burst", 0, "write-class token-bucket depth (0 = derived from -write-qps)")
	blockSize := flag.Int("block-size", 0, "target encoded segment-block size in bytes (0 = engine default, 4096)")
	blockCacheMB := flag.Int("block-cache-mb", 0, "decoded-block cache shared by all tables, in MiB (0 = process default, 64)")
	blockCompression := flag.String("block-compression", "none", "segment block codec: none, flate or snappy")
	maxSubscriptions := flag.Int("max-subscriptions", 0, "global cap on live pub/sub subscriptions (0 = registry default, 10000)")
	subQueueCap := flag.Int("sub-queue-cap", 0, "per-subscription bounded event queue; overflow drops oldest (0 = registry default, 256)")
	subTTL := flag.Duration("sub-ttl", 0, "default subscription time-to-live (0 = registry default, 15m; clamped to 24h)")
	hotinBucket := flag.Duration("hotin-bucket", time.Hour, "materialized trending view bucket width (0 disables the view; trending falls back to scans)")
	hotinHorizon := flag.Duration("hotin-horizon", 336*time.Hour, "trending view retention horizon; trending windows are clamped to this span (0 = 14d default)")
	resultCacheMB := flag.Int("result-cache-mb", 32, "personalized result cache budget in MiB (0 disables caching)")
	flag.Parse()

	exec.SetDefaultWorkers(*scatterWorkers)

	cfg := core.DefaultConfig()
	cfg.Nodes = *nodes
	cfg.RegionsPerNode = *regionsPerNode
	cfg.POIs = *pois
	cfg.NetworkPopulation = *population
	cfg.Seed = *seed
	cfg.QueryTimeout = *queryTimeout
	cfg.ReadReplicas = *readReplicas
	cfg.ReadMaxAttempts = *readAttempts
	cfg.ReadBackoff = *readBackoff
	cfg.ReadHedgeAfter = *readHedgeAfter
	cfg.AllowDegraded = *allowDegraded
	cfg.AdmitQPS = *admitQPS
	cfg.AdmitBurst = *admitBurst
	cfg.ExecQueueCap = *execQueueCap
	cfg.RetryBudgetRatio = *retryBudget
	cfg.BreakerFailures = *breakerFailures
	cfg.BreakerOpenFor = *breakerOpenFor
	cfg.BreakerSlowAfter = *breakerSlowAfter
	cfg.FailoverEnabled = *failover
	cfg.SuspectAfter = *suspectAfter
	cfg.DownAfter = *downAfter
	cfg.WALDir = *walDir
	cfg.WALSync = *walSync
	cfg.CompactRateMBps = *compactRate
	cfg.MemtableFlushBytes = *memtableFlush
	cfg.WriteQPS = *writeQPS
	cfg.WriteBurst = *writeBurst
	cfg.BlockSizeBytes = *blockSize
	cfg.BlockCacheMB = *blockCacheMB
	cfg.BlockCompression = *blockCompression
	cfg.MaxSubscriptions = *maxSubscriptions
	cfg.SubQueueCap = *subQueueCap
	cfg.SubTTL = *subTTL
	cfg.HotInBucket = *hotinBucket
	cfg.HotInHorizon = *hotinHorizon
	if *hotinBucket == 0 {
		// -hotin-bucket 0 turns the whole view off; don't make the user
		// zero the horizon too.
		cfg.HotInHorizon = 0
	}
	cfg.ResultCacheMB = *resultCacheMB
	if *normalized {
		cfg.VisitSchema = repos.SchemaNormalized
	}

	log.Printf("booting platform: %d nodes × %d regions, %d POIs, %d users/network, schema=%s, wal=%q (sync=%s)",
		cfg.Nodes, cfg.RegionsPerNode, cfg.POIs, cfg.NetworkPopulation, cfg.VisitSchema, cfg.WALDir, cfg.WALSync)
	p, err := core.New(cfg)
	if err != nil {
		log.Fatalf("boot: %v", err)
	}
	log.Printf("platform ready; serving REST API on %s", *addr)
	if err := http.ListenAndServe(*addr, core.NewHandler(p)); err != nil {
		log.Fatalf("serve: %v", err)
	}
}
