// Command modissense-gen generates the synthetic datasets of the paper's
// evaluation as newline-delimited JSON, for inspection or for loading into
// other systems.
//
// Usage:
//
//	modissense-gen -kind pois -n 8500 > pois.ndjson
//	modissense-gen -kind users -n 150000 > users.ndjson
//	modissense-gen -kind visits -users 100 > visits.ndjson
//	modissense-gen -kind reviews -n 20000 > reviews.ndjson
//	modissense-gen -kind gps -users 5 > gps.ndjson
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"modissense/internal/model"
	"modissense/internal/workload"
)

func main() {
	kind := flag.String("kind", "pois", "dataset: pois | users | visits | reviews | gps")
	n := flag.Int("n", 1000, "record count (pois, users, reviews)")
	users := flag.Int("users", 10, "user count (visits, gps)")
	pois := flag.Int("pois", 500, "catalog size backing visits/gps generation")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	out := bufio.NewWriterSize(os.Stdout, 1<<20)
	defer out.Flush()
	enc := json.NewEncoder(out)
	rng := rand.New(rand.NewSource(*seed))

	emit := func(v interface{}) {
		if err := enc.Encode(v); err != nil {
			log.Fatalf("encode: %v", err)
		}
	}

	switch *kind {
	case "pois":
		for _, p := range workload.GenPOIs(rng, *n) {
			emit(p)
		}
	case "users":
		for _, u := range workload.GenUsers(rng, *n) {
			emit(u)
		}
	case "visits":
		catalog := workload.GenPOIs(rng, *pois)
		start := time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)
		end := time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC)
		for uid := int64(1); uid <= int64(*users); uid++ {
			for _, v := range workload.GenVisitsForUser(rng, uid, catalog, start, end,
				workload.PaperVisitMean, workload.PaperVisitSigma) {
				emit(v)
			}
		}
	case "reviews":
		docs, err := workload.GenReviews(rng, *n, workload.DefaultReviewOptions())
		if err != nil {
			log.Fatal(err)
		}
		for _, d := range docs {
			emit(map[string]interface{}{"text": d.Text, "label": d.Label.String()})
		}
	case "gps":
		catalog := workload.GenPOIs(rng, *pois)
		day := time.Date(2015, 5, 30, 0, 0, 0, 0, time.UTC)
		for uid := int64(1); uid <= int64(*users); uid++ {
			stops := []model.POI{
				catalog[rng.Intn(len(catalog))],
				catalog[rng.Intn(len(catalog))],
				catalog[rng.Intn(len(catalog))],
			}
			for _, f := range workload.GenGPSDay(rng, uid, day, stops, 5*time.Minute, 40*time.Minute) {
				emit(f)
			}
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown kind %q\n", *kind)
		flag.Usage()
		os.Exit(2)
	}
}
