// Command doc-lint enforces the godoc contract on the packages it is
// pointed at: every exported top-level identifier — functions, methods,
// types, and the exported names of const/var declarations — must carry a
// doc comment. Grouped const/var declarations satisfy the rule with a
// comment on the group or on the individual spec.
//
// The tool is AST-only and dependency-free, a sibling of obs-lint: it makes
// the documentation pass a build-time gate instead of a review-time
// convention.
//
// Usage:
//
//	doc-lint [dir ...]        # default: . ; a trailing /... is accepted
//
// _test.go files are skipped: test helpers are internal to their file and
// documented where it helps, not by mandate.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

type violation struct {
	pos token.Position
	msg string
}

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"."}
	}
	dirs := map[string]bool{}
	for _, root := range roots {
		root = strings.TrimSuffix(root, "/...")
		if root == "" {
			root = "."
		}
		if err := collectDirs(root, dirs); err != nil {
			fmt.Fprintf(os.Stderr, "doc-lint: %v\n", err)
			os.Exit(2)
		}
	}

	sorted := make([]string, 0, len(dirs))
	for d := range dirs {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted)

	fset := token.NewFileSet()
	var violations []violation
	audited := 0
	for _, dir := range sorted {
		v, n, err := lintDir(fset, dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doc-lint: %s: %v\n", dir, err)
			os.Exit(2)
		}
		violations = append(violations, v...)
		audited += n
	}

	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "%s: %s\n", v.pos, v.msg)
		}
		fmt.Fprintf(os.Stderr, "doc-lint: %d undocumented exported identifier(s)\n", len(violations))
		os.Exit(1)
	}
	fmt.Printf("doc-lint: ok (%d exported identifiers audited)\n", audited)
}

// collectDirs gathers every directory under root that can hold Go source,
// skipping VCS metadata and testdata trees.
func collectDirs(root string, dirs map[string]bool) error {
	return filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if name == ".git" || name == "testdata" || (strings.HasPrefix(name, ".") && path != root) {
			return filepath.SkipDir
		}
		dirs[path] = true
		return nil
	})
}

// lintDir parses one package directory and returns its violations plus the
// number of exported identifiers audited.
func lintDir(fset *token.FileSet, dir string) ([]violation, int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, 0, err
	}
	var violations []violation
	audited := 0
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, 0, err
		}
		v, n := lintFile(fset, f)
		violations = append(violations, v...)
		audited += n
	}
	return violations, audited, nil
}

// lintFile audits one file's top-level declarations.
func lintFile(fset *token.FileSet, f *ast.File) ([]violation, int) {
	var violations []violation
	audited := 0
	report := func(pos token.Pos, kind, name string) {
		violations = append(violations, violation{
			pos: fset.Position(pos),
			msg: fmt.Sprintf("exported %s %s has no doc comment", kind, name),
		})
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() {
				continue
			}
			// Methods count when the receiver's base type is exported too;
			// an exported method on an unexported type is unreachable API.
			if d.Recv != nil && !exportedReceiver(d.Recv) {
				continue
			}
			audited++
			if d.Doc == nil {
				kind := "function"
				if d.Recv != nil {
					kind = "method"
				}
				report(d.Name.Pos(), kind, d.Name.Name)
			}
		case *ast.GenDecl:
			switch d.Tok {
			case token.TYPE:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok || !ts.Name.IsExported() {
						continue
					}
					audited++
					if d.Doc == nil && ts.Doc == nil {
						report(ts.Name.Pos(), "type", ts.Name.Name)
					}
				}
			case token.CONST, token.VAR:
				kind := "const"
				if d.Tok == token.VAR {
					kind = "var"
				}
				for _, spec := range d.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, id := range vs.Names {
						if !id.IsExported() {
							continue
						}
						audited++
						// A group comment, a spec doc, or a trailing line
						// comment all document the name.
						if d.Doc == nil && vs.Doc == nil && vs.Comment == nil {
							report(id.Pos(), kind, id.Name)
						}
					}
				}
			}
		}
	}
	return violations, audited
}

// exportedReceiver reports whether the method receiver's base type name is
// exported.
func exportedReceiver(recv *ast.FieldList) bool {
	if recv == nil || len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}
