package main

import (
	"fmt"
	"strconv"

	"modissense/internal/bench"
)

// runIngest drives the write-path experiment: the group-commit WAL against
// the per-put fsync baseline at equal durability, then a sustained batched
// check-in stream with concurrent readers against a durable platform whose
// memtables are shrunk so flush and background compaction run mid-load.
func runIngest(quick bool) error {
	cfg := bench.DefaultIngest()
	if quick {
		cfg.WALWriters = 8
		cfg.WALAppendsPerWriter = 40
		cfg.POIs = 200
		cfg.Population = 400
		cfg.Writers = 4
		cfg.BatchesPerWriter = 8
		cfg.BatchSize = 25
		cfg.Readers = 2
		cfg.ReadsPerReader = 6
	}
	fmt.Println("== Ingest: group-commit WAL, batched check-ins, background compaction under load ==")
	fmt.Printf("wal: %d writers x %d appends; api: %d writers x %d batches x %d check-ins, %d readers\n\n",
		cfg.WALWriters, cfg.WALAppendsPerWriter, cfg.Writers, cfg.BatchesPerWriter, cfg.BatchSize, cfg.Readers)
	res, err := bench.RunIngest(cfg)
	if err != nil {
		return err
	}

	rows := make([][]string, 0, len(res.WALModes))
	for _, m := range res.WALModes {
		rows = append(rows, []string{
			m.Mode, strconv.Itoa(m.Writers), strconv.Itoa(m.Appends),
			fmt.Sprintf("%.2f", m.Seconds), fmt.Sprintf("%.0f", m.AppendsPerSec),
		})
	}
	fmt.Println(bench.RenderTable([]string{"wal-mode", "writers", "appends", "seconds", "appends/s"}, rows))
	fmt.Printf("group-commit speedup over per-put fsync: %.1fx\n\n", res.WALSpeedup)

	fmt.Println(bench.RenderTable(
		[]string{"batches", "stored", "write-errs", "reads-ok", "read-errs",
			"write-p50(ms)", "write-p99(ms)", "read-p50(ms)", "read-p99(ms)"},
		[][]string{{
			strconv.Itoa(res.BatchesSent), strconv.Itoa(res.CheckinsStored),
			strconv.Itoa(res.WriteErrors), strconv.Itoa(res.ReadsOK), strconv.Itoa(res.ReadErrors),
			fmt.Sprintf("%.1f", res.WriteP50Millis), fmt.Sprintf("%.1f", res.WriteP99Millis),
			fmt.Sprintf("%.1f", res.ReadP50Millis), fmt.Sprintf("%.1f", res.ReadP99Millis),
		}}))
	fmt.Printf("maintenance: flushes=%d background-compactions=%d write-stalls=%d peak-debt=%dB final-debt=%dB\n\n",
		res.Flushes, res.BackgroundCompactions, res.WriteStalls, res.PeakDebtBytes, res.FinalDebtBytes)

	gate := func(name string, ok bool) {
		verdict := "PASS"
		if !ok {
			verdict = "FAIL"
		}
		fmt.Printf("gate %-52s %s\n", name+":", verdict)
	}
	gate(fmt.Sprintf("wal: group-commit >= %.0fx per-put at equal durability", cfg.WALSpeedupMin),
		res.WALSpeedup >= cfg.WALSpeedupMin)
	gate("ingest: every batch acknowledged, no write errors",
		res.WriteErrors == 0 && res.CheckinsStored == res.BatchesSent*cfg.BatchSize)
	gate(fmt.Sprintf("ingest: write p99 <= %s", cfg.WriteP99Budget),
		res.WriteP99Millis <= cfg.WriteP99Budget.Seconds()*1000)
	gate(fmt.Sprintf("ingest: read p99 under ingest <= %s", cfg.ReadP99Budget),
		res.ReadErrors == 0 && res.ReadP99Millis <= cfg.ReadP99Budget.Seconds()*1000)
	gate("maintenance: flushes ran during the load", res.Flushes > 0)
	gate("maintenance: compaction debt drained to zero", res.FinalDebtBytes == 0)
	fmt.Println()

	return writeSeriesJSON("BENCH_ingest.json", res)
}
