package main

import (
	"fmt"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"

	"modissense/client"
	"modissense/internal/core"
)

// metricPoint is one exposition series flattened for BENCH_metrics.json:
// the full `name{labels}` series identifier and its scraped value.
type metricPoint struct {
	Series string  `json:"series"`
	Value  float64 `json:"value"`
}

// runMetrics boots a platform, pushes a real personalized search through
// the HTTP stack, then scrapes GET /metrics and persists every series to
// BENCH_metrics.json — so a bench run captures the observability layer's
// output (rows scanned, coprocessor latency buckets, per-route HTTP
// counters) alongside the latency figures, and regressions in the
// instrumentation itself show up in the series diff.
func runMetrics(quick bool) error {
	cfg := core.DefaultConfig()
	if quick {
		cfg.POIs = 200
		cfg.NetworkPopulation = 300
		cfg.MeanFriends = 12
		cfg.ClassifierTrainDocs = 300
	}
	fmt.Println("== Observability: /metrics scrape after live API traffic ==")
	p, err := core.New(cfg)
	if err != nil {
		return err
	}
	srv := httptest.NewServer(core.NewHandler(p))
	defer srv.Close()

	c, err := client.New(srv.URL, srv.Client())
	if err != nil {
		return err
	}
	if _, err := c.SignIn("facebook", "facebook:1"); err != nil {
		return err
	}
	friends, err := c.Friends("")
	if err != nil {
		return err
	}
	ids := make([]int64, 0, len(friends))
	for _, f := range friends {
		ids = append(ids, f.ID)
	}
	res, err := c.Search(client.SearchParams{Friends: ids, Limit: 10})
	if err != nil {
		return err
	}
	tr, err := c.QueryTrace(c.LastRequestID())
	if err != nil {
		return err
	}

	text, err := c.Metrics()
	if err != nil {
		return err
	}
	points := parseExposition(text)
	if len(points) == 0 {
		return fmt.Errorf("scrape returned no series")
	}
	sort.Slice(points, func(i, j int) bool { return points[i].Series < points[j].Series })

	fmt.Printf("search: %d results over %d friends, trace %s spans %d children, scrape %d series\n\n",
		len(res.POIs), len(ids), tr.RequestID, len(tr.Root.Children), len(points))
	return writeSeriesJSON("BENCH_metrics.json", points)
}

// parseExposition flattens Prometheus text format 0.0.4 into points,
// skipping comment and blank lines.
func parseExposition(text string) []metricPoint {
	var points []metricPoint
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		cut := strings.LastIndexByte(line, ' ')
		if cut <= 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[cut+1:], 64)
		if err != nil {
			continue
		}
		points = append(points, metricPoint{Series: line[:cut], Value: v})
	}
	return points
}
