package main

import (
	"fmt"
	"strconv"

	"modissense/internal/bench"
)

// faultSchedule optionally overrides the experiment's fault DSL (the
// -faults flag).
var faultSchedule string

// runFaults measures the fault-tolerant read path: the Figure 2 workload
// against a replicated dataset under a seeded fault schedule, in three
// modes — fault-free baseline, hedged+replicated, and mechanism-disabled.
func runFaults(quick bool) error {
	cfg := bench.DefaultFaults()
	if quick {
		cfg.Dataset.Users = 1500
		cfg.Queries = 40
		cfg.UnprotectedQueries = 10
		cfg.Friends = 400
	}
	if faultSchedule != "" {
		cfg.Schedule = faultSchedule
	}
	fmt.Println("== Fault tolerance: hedged replicated reads under an injected region-server stall ==")
	fmt.Printf("schedule: %q, %d replicas, %s query deadline\n\n", cfg.Schedule, cfg.Replicas, cfg.QueryTimeout)
	modes, err := bench.RunFaults(cfg)
	if err != nil {
		return err
	}
	rows := make([][]string, 0, len(modes))
	for _, m := range modes {
		rows = append(rows, []string{
			m.Mode, strconv.Itoa(m.Queries),
			fmt.Sprintf("%.1f%%", m.SuccessRate*100),
			fmt.Sprintf("%.1f%%", m.DegradedRate*100),
			strconv.Itoa(m.Timeouts), strconv.Itoa(m.Errors),
			fmt.Sprintf("%.1f", m.P50Millis), fmt.Sprintf("%.1f", m.P99Millis),
			strconv.FormatInt(m.Hedges, 10), strconv.FormatInt(m.Retries, 10),
			strconv.FormatInt(m.ReplicaReads, 10),
		})
	}
	fmt.Println(bench.RenderTable(
		[]string{"mode", "queries", "non-5xx", "degraded", "timeouts", "errors", "p50(ms)", "p99(ms)", "hedges", "retries", "replica-reads"}, rows))

	// Acceptance gates: the protected run must stay ≥99% non-5xx within
	// twice the fault-free p99; the unprotected run must demonstrably fail.
	var free, hedged, unprot *bench.FaultsMode
	for i := range modes {
		switch modes[i].Mode {
		case "fault-free":
			free = &modes[i]
		case "hedged":
			hedged = &modes[i]
		case "unprotected":
			unprot = &modes[i]
		}
	}
	if free != nil && hedged != nil && unprot != nil {
		gate := func(name string, ok bool) {
			verdict := "PASS"
			if !ok {
				verdict = "FAIL"
			}
			fmt.Printf("gate %-34s %s\n", name+":", verdict)
		}
		gate("hedged non-5xx >= 99%", hedged.SuccessRate >= 0.99)
		gate("hedged p99 <= 2x fault-free p99", hedged.P99Millis <= 2*free.P99Millis)
		gate("unprotected demonstrably fails", unprot.SuccessRate < 0.99 || unprot.P99Millis > 2*free.P99Millis)
		fmt.Println()
	}
	return writeSeriesJSON("BENCH_faults.json", modes)
}
