// Command modissense-bench regenerates the paper's evaluation: Figure 2
// (query latency vs friends), Figure 3 (concurrent-query latency), Figure 4
// (classifier accuracy vs training size), the 94%-accuracy claim, the
// schema and region-count ablations, and the MR-DBSCAN experiment.
//
// Usage:
//
//	modissense-bench -exp all            # everything (default)
//	modissense-bench -exp fig2           # one experiment
//	modissense-bench -exp fig3 -quick    # reduced sweep for smoke runs
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"modissense/internal/bench"
	"modissense/internal/exec"
)

// outDir receives the machine-readable BENCH_*.json series files next to
// the rendered tables.
var outDir string

func main() {
	exp := flag.String("exp", "all", "experiment: fig2 | fig3 | fig4 | accuracy | ablation-schema | ablation-regions | dbscan | ext-cnb | ext-webservers | ext-topk | metrics | faults | failover | overload | ingest | blocks | pubsub | trending | all")
	quick := flag.Bool("quick", false, "run reduced sweeps (smaller dataset, fewer points)")
	scatterWorkers := flag.Int("scatter-workers", 0, "scatter-gather worker-pool size for real region execution (0 = GOMAXPROCS)")
	out := flag.String("out", ".", "directory for machine-readable BENCH_*.json result files")
	faults := flag.String("faults", "", "fault schedule DSL for the faults experiment (e.g. \"stall:node=1,dur=400ms\"; empty = the experiment's default)")
	flag.Parse()

	exec.SetDefaultWorkers(*scatterWorkers)
	outDir = *out
	faultSchedule = *faults

	runners := map[string]func(bool) error{
		"fig2":             runFig2,
		"fig3":             runFig3,
		"fig4":             runFig4,
		"accuracy":         runAccuracy,
		"ablation-schema":  runSchemaAblation,
		"ablation-regions": runRegionAblation,
		"dbscan":           runDBSCAN,
		"ext-cnb":          runCNB,
		"ext-webservers":   runWebServers,
		"ext-topk":         runTopK,
		"metrics":          runMetrics,
		"faults":           runFaults,
		"failover":         runFailover,
		"overload":         runOverload,
		"ingest":           runIngest,
		"blocks":           runBlocks,
		"pubsub":           runPubSub,
		"trending":         runTrending,
	}
	order := []string{"fig2", "fig3", "fig4", "accuracy", "ablation-schema", "ablation-regions", "dbscan", "ext-cnb", "ext-webservers", "ext-topk", "metrics", "faults", "failover", "overload", "ingest", "blocks", "pubsub", "trending"}

	if *exp == "all" {
		for _, name := range order {
			if err := timed(name, runners[name], *quick); err != nil {
				log.Fatalf("%s: %v", name, err)
			}
		}
		return
	}
	runner, ok := runners[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
	if err := timed(*exp, runner, *quick); err != nil {
		log.Fatalf("%s: %v", *exp, err)
	}
}

func timed(name string, fn func(bool) error, quick bool) error {
	start := time.Now()
	err := fn(quick)
	fmt.Printf("[%s finished in %.1fs]\n\n", name, time.Since(start).Seconds())
	return err
}

func f(v float64) string  { return strconv.FormatFloat(v, 'f', 3, 64) }
func ms(v float64) string { return strconv.FormatFloat(v*1000, 'f', 0, 64) }

// writeSeriesJSON emits one experiment's points as an indented JSON array so
// plots and regression checks can consume the run without parsing tables.
func writeSeriesJSON(name string, v interface{}) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(outDir, name)
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

func runFig2(quick bool) error {
	cfg := bench.DefaultFig2()
	if quick {
		cfg.Dataset.Users = 2000
		cfg.FriendCounts = []int{500, 1000, 1500}
		cfg.Repetitions = 1
	}
	fmt.Println("== Figure 2: personalized query latency vs number of SN friends ==")
	fmt.Printf("dataset: %d POIs, %d users, visits/user ≈ N(%d, %d) (paper volume ÷ %d)\n\n",
		cfg.Dataset.POIs, cfg.Dataset.Users, 170/cfg.Dataset.VisitScale, 10/cfg.Dataset.VisitScale,
		cfg.Dataset.VisitScale)
	points, err := bench.RunFig2(cfg)
	if err != nil {
		return err
	}
	bench.SortFig2(points)
	rows := make([][]string, 0, len(points))
	for _, p := range points {
		rows = append(rows, []string{
			strconv.Itoa(p.Nodes), strconv.Itoa(p.Friends),
			ms(p.LatencySeconds), ms(p.PaperEquivalentSeconds),
			strconv.FormatInt(p.RowsScanned, 10), strconv.FormatInt(p.BytesMerged, 10),
		})
	}
	fmt.Println(bench.RenderTable(
		[]string{"nodes", "friends", "latency(ms)", "paper-equivalent(ms)", "rows-scanned", "bytes-merged"}, rows))
	return writeSeriesJSON("BENCH_fig2.json", points)
}

func runFig3(quick bool) error {
	cfg := bench.DefaultFig3()
	if quick {
		cfg.Dataset.Users = 2000
		cfg.Concurrency = []int{10, 20}
		cfg.FriendsPerQuery = 1000
	}
	fmt.Println("== Figure 3: average latency of concurrent queries (6000 friends each) ==")
	points, err := bench.RunFig3(cfg)
	if err != nil {
		return err
	}
	bench.SortFig3(points)
	rows := make([][]string, 0, len(points))
	for _, p := range points {
		rows = append(rows, []string{
			strconv.Itoa(p.Nodes), strconv.Itoa(p.Concurrent),
			f(p.AvgLatencySeconds), f(p.PaperEquivalentSeconds),
			strconv.FormatInt(p.RowsScanned, 10), strconv.FormatInt(p.BytesMerged, 10),
		})
	}
	fmt.Println(bench.RenderTable(
		[]string{"nodes", "concurrent", "avg-latency(s)", "paper-equivalent(s)", "rows-scanned", "bytes-merged"}, rows))
	return writeSeriesJSON("BENCH_fig3.json", points)
}

func runFig4(quick bool) error {
	cfg := bench.DefaultFig4()
	if quick {
		cfg.TrainSizes = []int{500, 1000, 4000}
		cfg.TestDocs = 800
	}
	fmt.Println("== Figure 4: classification accuracy vs training-set size ==")
	fmt.Printf("corpus scale: 1/%d of the paper's crawl (threshold 500k ↔ %d docs)\n\n",
		bench.Fig4Scale, cfg.Corpus.CleanDocs)
	points, err := bench.RunFig4(cfg)
	if err != nil {
		return err
	}
	rows := make([][]string, 0, len(points))
	for _, p := range points {
		rows = append(rows, []string{
			strconv.Itoa(p.TrainDocs),
			fmt.Sprintf("%.1fM", float64(p.PaperEquivalentDocs)/1e6),
			p.Pipeline,
			fmt.Sprintf("%.1f%%", p.Accuracy*100),
		})
	}
	fmt.Println(bench.RenderTable(
		[]string{"train-docs", "paper-equivalent", "pipeline", "accuracy"}, rows))
	return nil
}

func runAccuracy(bool) error {
	fmt.Println("== In-text claim: classifier accuracy towards unseen data ==")
	acc, err := bench.AccuracyClaim(46)
	if err != nil {
		return err
	}
	fmt.Printf("optimized pipeline at the quality threshold: %.1f%% (paper: 94%%)\n\n", acc*100)
	return nil
}

func runSchemaAblation(quick bool) error {
	cfg := bench.DefaultSchemaAblation()
	if quick {
		cfg.Dataset.Users = 1500
		cfg.Friends = 500
	}
	fmt.Println("== Ablation: replicated visit schema vs join-at-query-time (§2.1) ==")
	rows, err := bench.RunSchemaAblation(cfg)
	if err != nil {
		return err
	}
	table := make([][]string, 0, len(rows))
	for _, r := range rows {
		table = append(table, []string{
			r.Schema, ms(r.LatencySeconds), strconv.Itoa(r.CandidatesMoved), strconv.Itoa(r.ResultPOIs),
		})
	}
	fmt.Println(bench.RenderTable(
		[]string{"schema", "latency(ms)", "candidates-shipped", "results"}, table))
	return nil
}

func runRegionAblation(quick bool) error {
	cfg := bench.DefaultRegionAblation()
	if quick {
		cfg.Dataset.Users = 1500
		cfg.Friends = 500
		cfg.RegionCounts = []int{4, 16, 64}
	}
	fmt.Println("== Ablation: region count vs intra-query parallelism (§2.2) ==")
	rows, err := bench.RunRegionAblation(cfg)
	if err != nil {
		return err
	}
	table := make([][]string, 0, len(rows))
	for _, r := range rows {
		table = append(table, []string{strconv.Itoa(r.Regions), ms(r.LatencySeconds)})
	}
	fmt.Println(bench.RenderTable([]string{"regions", "latency(ms)"}, table))
	return nil
}

func runDBSCAN(quick bool) error {
	cfg := bench.DefaultDBSCAN()
	if quick {
		cfg.Gatherings = 6
		cfg.PointsPerGathering = 100
		cfg.NoisePoints = 500
	}
	fmt.Println("== Event detection: MR-DBSCAN correctness and parallel speedup ==")
	rows, err := bench.RunDBSCAN(cfg)
	if err != nil {
		return err
	}
	table := make([][]string, 0, len(rows))
	for _, r := range rows {
		table = append(table, []string{
			strconv.Itoa(r.Nodes),
			fmt.Sprintf("%d/%d", r.ClustersFound, r.ClustersExpected),
			strconv.FormatBool(r.AgreesWithSeq),
			f(r.SimulatedSeconds),
		})
	}
	fmt.Println(bench.RenderTable(
		[]string{"nodes", "clusters", "matches-sequential", "makespan(s)"}, table))
	return nil
}

func runCNB(quick bool) error {
	sizes := []int{500, 1000, 4000, 12000}
	testDocs := 2000
	if quick {
		sizes = []int{500, 2000}
		testDocs = 800
	}
	fmt.Println("== Extension: multinomial vs Complement Naive Bayes (both shipped by Mahout) ==")
	rows, err := bench.RunClassifierComparison(sizes, testDocs, 48)
	if err != nil {
		return err
	}
	table := make([][]string, 0, len(rows))
	for _, r := range rows {
		table = append(table, []string{
			strconv.Itoa(r.TrainDocs), r.Algorithm, fmt.Sprintf("%.1f%%", r.Accuracy*100),
		})
	}
	fmt.Println(bench.RenderTable([]string{"train-docs", "algorithm", "accuracy"}, table))
	return nil
}

func runWebServers(quick bool) error {
	cfg := bench.DefaultWebServerAblation()
	if quick {
		cfg.Dataset.Users = 1500
		cfg.Concurrent = 12
		cfg.FriendsPerQuery = 500
	}
	fmt.Println("== Extension: web-server farm sizing (§3.1's 'two servers suffice' claim) ==")
	rows, err := bench.RunWebServerAblation(cfg)
	if err != nil {
		return err
	}
	table := make([][]string, 0, len(rows))
	for _, r := range rows {
		table = append(table, []string{strconv.Itoa(r.WebServers), f(r.AvgLatencySeconds)})
	}
	fmt.Println(bench.RenderTable([]string{"web-servers", "avg-latency(s)"}, table))
	return nil
}

func runTopK(quick bool) error {
	cfg := bench.DefaultTopKAblation()
	if quick {
		cfg.Dataset.Users = 1500
		cfg.Friends = 500
	}
	fmt.Println("== Extension: exact merge vs per-region top-K truncation ==")
	rows, err := bench.RunTopKAblation(cfg)
	if err != nil {
		return err
	}
	table := make([][]string, 0, len(rows))
	for _, r := range rows {
		label := strconv.Itoa(r.RegionTopK)
		if r.RegionTopK == 0 {
			label = "exact"
		}
		table = append(table, []string{
			label, ms(r.LatencySeconds), strconv.Itoa(r.CandidatesMoved), fmt.Sprintf("%.2f", r.Recall),
		})
	}
	fmt.Println(bench.RenderTable([]string{"region-topk", "latency(ms)", "candidates-shipped", "recall@10"}, table))
	return nil
}
