package main

import (
	"fmt"
	"strconv"

	"modissense/internal/bench"
)

// runTrending drives the materialized-trending experiment: the
// incrementally maintained HotIn view against the scan path while history
// grows 1× → 8× → 64×, a repeat-heavy personalized workload against the
// result cache, the /metrics exposition of the cache counters, and the
// byte-equivalence of cached answers against the scan path.
func runTrending(quick bool) error {
	cfg := bench.DefaultTrending()
	if quick {
		cfg.HistoryDays = []int{1, 4, 16}
		cfg.VisitsPerDay = 1200
		cfg.QueriesPerScale = 15
		cfg.DistinctQueries = 8
		cfg.RepeatsPerQuery = 4
	}
	fmt.Println("== Trending: materialized view + per-user result cache ==")
	fmt.Printf("history scales %v days at %d visits/day; repeat workload: %d distinct x %d repeats, %d friends each\n\n",
		cfg.HistoryDays, cfg.VisitsPerDay, cfg.DistinctQueries, cfg.RepeatsPerQuery, cfg.FriendsPerQuery)
	res, err := bench.RunTrending(cfg)
	if err != nil {
		return err
	}

	rows := make([][]string, 0, len(res.Scales))
	for _, s := range res.Scales {
		rows = append(rows, []string{
			strconv.Itoa(s.HistoryDays), strconv.Itoa(s.Visits), strconv.Itoa(s.ViewBuckets),
			fmt.Sprintf("%.3f", s.ViewP50Ms), fmt.Sprintf("%.3f", s.ViewP99Ms),
			fmt.Sprintf("%.3f", s.RecomputeP50Ms), fmt.Sprintf("%.3f", s.RecomputeP99Ms),
			strconv.FormatInt(s.RecomputeRows, 10),
		})
	}
	fmt.Println(bench.RenderTable(
		[]string{"days", "visits", "buckets", "view-p50(ms)", "view-p99(ms)", "recompute-p50(ms)", "recompute-p99(ms)", "recompute-rows"},
		rows))
	fmt.Println(bench.RenderTable(
		[]string{"cold", "warm", "cold-mean(ms)", "warm-mean(ms)", "speedup", "hits", "misses", "hit-ratio"},
		[][]string{{
			strconv.Itoa(res.ColdQueries), strconv.Itoa(res.WarmQueries),
			fmt.Sprintf("%.3f", res.ColdMeanMs), fmt.Sprintf("%.3f", res.WarmMeanMs),
			fmt.Sprintf("%.1fx", res.RepeatSpeedup),
			strconv.FormatInt(res.CacheHits, 10), strconv.FormatInt(res.CacheMisses, 10),
			fmt.Sprintf("%.2f", res.CacheHitRatio),
		}}))
	fmt.Printf("equivalence: %d/%d cached answers byte-identical to the scan path; /metrics: %d matview families, cache hits %.0f\n\n",
		res.EquivalenceEqual, res.EquivalenceChecks, res.MetricsFamilies, res.MetricsHits)

	gate := func(name string, ok bool) {
		verdict := "PASS"
		if !ok {
			verdict = "FAIL"
		}
		fmt.Printf("gate %-52s %s\n", name+":", verdict)
	}
	first, last := res.Scales[0], res.Scales[len(res.Scales)-1]
	// The absolute floor keeps sub-millisecond noise from flipping the
	// flatness verdict on fast machines.
	budget := first.ViewP99Ms*cfg.FlatSlack + 2.0
	gate(fmt.Sprintf("view: trending p99 flat across history (%.3f <= %.3f ms)", last.ViewP99Ms, budget),
		last.ViewP99Ms <= budget)
	gate("baseline: recompute work grows with history (sanity)",
		last.RecomputeRows > first.RecomputeRows && last.RecomputeP50Ms > first.RecomputeP50Ms)
	gate(fmt.Sprintf("cache: repeat-query speedup >= %.0fx (got %.1fx)", cfg.MinSpeedup, res.RepeatSpeedup),
		res.RepeatSpeedup >= cfg.MinSpeedup)
	gate("cache: every repeat hit, every cold query missed",
		res.UnexpectedMiss == 0 && res.CacheHits > 0)
	gate("metrics: cache hit counter exposed on /metrics",
		res.MetricsHits > 0 && res.MetricsFamilies == 6)
	gate(fmt.Sprintf("correctness: cached == scan path on all %d checks", res.EquivalenceChecks),
		res.EquivalenceChecks > 0 && res.EquivalenceEqual == res.EquivalenceChecks)
	fmt.Println()

	return writeSeriesJSON("BENCH_trending.json", res)
}
