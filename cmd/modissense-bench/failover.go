package main

import (
	"fmt"
	"strconv"

	"modissense/internal/bench"
)

// runFailover measures the write-path fault-tolerance mechanism: concurrent
// batched check-in writers and scatter readers while the node owning the
// most region primaries is crashed, with the failure detector, replica
// promotion, epoch fencing and rejoin all on the line.
func runFailover(quick bool) error {
	cfg := bench.DefaultFailover()
	if quick {
		cfg.Dataset.Users = 1200
		cfg.AcksPerWriter = 1200
		cfg.KillAfterAcks = 800
		cfg.Friends = 200
	}
	fmt.Println("== Write-path failover: primary kill under live ingest, zero acked-write loss ==")
	fmt.Printf("%d nodes, %d replicas, %d writers x %d acks, kill after %d acks, window budget %s\n\n",
		cfg.Nodes, cfg.Replicas, cfg.Writers, cfg.AcksPerWriter, cfg.KillAfterAcks, cfg.WindowBudget)
	res, err := bench.RunFailover(cfg)
	if err != nil {
		return err
	}
	fmt.Println(bench.RenderTable(
		[]string{"acked", "retries", "sentinels", "missing", "outage(ms)", "victim", "moved", "epoch", "queries-ok", "degraded", "query-errors"},
		[][]string{{
			strconv.Itoa(res.AckedWrites), strconv.Itoa(res.WriteRetries),
			strconv.Itoa(res.Sentinels), strconv.Itoa(res.SentinelsMissing),
			fmt.Sprintf("%.1f", res.UnavailabilityMillis),
			strconv.Itoa(res.VictimNode),
			fmt.Sprintf("%d/%d", res.PrimariesMoved, res.VictimPrimaries),
			fmt.Sprintf("%d->%d", res.EpochBefore, res.EpochAfter),
			strconv.Itoa(res.QueriesOK), strconv.Itoa(res.QueriesDegraded), strconv.Itoa(res.QueryErrors),
		}}))

	// Acceptance gates: every acknowledged write must survive the cutover,
	// the outage must stay inside budget, the zombie must be fenced, the
	// readers must ride through, and the topology must fully converge.
	gate := func(name string, ok bool) {
		verdict := "PASS"
		if !ok {
			verdict = "FAIL"
		}
		fmt.Printf("gate %-34s %s\n", name+":", verdict)
	}
	gate("zero acked-write loss", res.Sentinels > 0 && res.SentinelsMissing == 0)
	gate("write outage within budget", res.UnavailabilityMillis <= res.WindowBudgetMillis)
	gate("zombie write fenced and invisible", res.ZombieFenced && !res.ZombieVisible)
	gate("queries >= 99% non-5xx", res.QuerySuccessRate >= 0.99)
	gate("primaries moved off victim", res.PrimariesMoved == res.VictimPrimaries && res.VictimPrimaries > 0)
	gate("replica factor converged", res.ReplicasConverged)
	gate("rejoin as replica only", res.RejoinOK)
	gate("goroutines converged", res.GoroutinesAfter <= res.GoroutinesBefore+10)
	fmt.Println()
	return writeSeriesJSON("BENCH_failover.json", res)
}
