package main

import (
	"fmt"
	"strconv"

	"modissense/internal/bench"
)

// runPubSub drives the continuous-query experiment: the incremental
// matcher against thousands of standing spatio-textual subscriptions,
// then end-to-end delivery over HTTP — long-poll consumers timing
// push-to-notify under concurrent batched ingest while an abandoned
// subscription's bounded queue overflows into counted drops.
func runPubSub(quick bool) error {
	cfg := bench.DefaultPubSub()
	if quick {
		cfg.Subscriptions = 1000
		cfg.Publishes = 5000
		cfg.POIs = 200
		cfg.Population = 300
		cfg.Writers = 3
		cfg.BatchesPerWriter = 6
		cfg.BatchSize = 20
		cfg.Subscribers = 3
		cfg.QueueCap = 32
	}
	fmt.Println("== PubSub: standing spatio-textual queries over the check-in stream ==")
	fmt.Printf("matcher: %d subscriptions x %d publishes; delivery: %d writers x %d batches x %d check-ins, %d consumers, queue cap %d\n\n",
		cfg.Subscriptions, cfg.Publishes, cfg.Writers, cfg.BatchesPerWriter, cfg.BatchSize, cfg.Subscribers, cfg.QueueCap)
	res, err := bench.RunPubSub(cfg)
	if err != nil {
		return err
	}

	fmt.Println(bench.RenderTable(
		[]string{"subscriptions", "publishes", "matches", "publish/s", "match-avg(us)"},
		[][]string{{
			strconv.Itoa(res.Subscriptions), strconv.Itoa(res.Publishes),
			strconv.FormatInt(res.Matches, 10),
			fmt.Sprintf("%.0f", res.PublishPerSec), fmt.Sprintf("%.1f", res.MatchAvgMicros),
		}}))
	fmt.Println(bench.RenderTable(
		[]string{"pushed", "write-errs", "delivered", "poll-errs",
			"notify-p50(ms)", "notify-p99(ms)", "slow-sub-drops", "obs-drops"},
		[][]string{{
			strconv.Itoa(res.CheckinsPushed), strconv.Itoa(res.WriteErrors),
			strconv.Itoa(res.EventsDelivered), strconv.Itoa(res.PollErrors),
			fmt.Sprintf("%.1f", res.NotifyP50Millis), fmt.Sprintf("%.1f", res.NotifyP99Millis),
			strconv.FormatUint(res.SlowSubDropped, 10), strconv.FormatInt(res.ObsDropped, 10),
		}}))
	fmt.Printf("goroutines: before-load=%d after-load=%d\n\n", res.GoroutinesBefore, res.GoroutinesAfter)

	gate := func(name string, ok bool) {
		verdict := "PASS"
		if !ok {
			verdict = "FAIL"
		}
		fmt.Printf("gate %-52s %s\n", name+":", verdict)
	}
	gate(fmt.Sprintf("matcher: >= %.0f publishes/s against %d standing queries", cfg.MatchMinPerSec, cfg.Subscriptions),
		res.PublishPerSec >= cfg.MatchMinPerSec)
	gate("matcher: standing queries actually matched", res.Matches > 0)
	gate("delivery: check-ins pushed and events delivered, no errors",
		res.WriteErrors == 0 && res.PollErrors == 0 && res.CheckinsPushed > 0 && res.EventsDelivered > 0)
	gate(fmt.Sprintf("delivery: notify p99 <= %s under concurrent ingest", cfg.NotifyP99Budget),
		res.NotifyP99Millis > 0 && res.NotifyP99Millis <= cfg.NotifyP99Budget.Seconds()*1000)
	gate("bounded queue: abandoned subscription overflowed into counted drops",
		res.SlowSubDropped > 0 && res.ObsDropped >= int64(res.SlowSubDropped))
	gate("lifecycle: goroutines returned to the pre-load baseline",
		res.GoroutinesAfter <= res.GoroutinesBefore+2)
	fmt.Println()

	return writeSeriesJSON("BENCH_pubsub.json", res)
}
