package main

import (
	"fmt"
	"strconv"

	"modissense/internal/bench"
)

// runBlocks drives the block-format experiment: resident-footprint
// reduction from prefix + block compression, multi-scan tail latency
// parity against the uncompressed baseline, block-cache hit rate under a
// Zipfian re-read load, and filter-driven block skipping on pruned scans
// and absent-row probes.
func runBlocks(quick bool) error {
	cfg := bench.DefaultBlocks()
	if quick {
		cfg.Rows = 1500
		cfg.ScanIterations = 150
		cfg.ZipfReads = 2500
		cfg.ZipfWarm = 800
		cfg.ZipfCacheBytes = 256 << 10
		cfg.PrunedScans = 60
		cfg.AbsentGets = 150
	}
	fmt.Println("== Blocks: prefix-compressed segment blocks, codec, cache, and filter pruning ==")
	fmt.Printf("dataset: %d rows x %d quals, %dB values; block=%dB codec=%s; %d scans x %d ranges; %d zipf reads @ %dKiB cache\n\n",
		cfg.Rows, cfg.QualsPerRow, cfg.ValueBytes, cfg.BlockSizeBytes, cfg.Compression,
		cfg.ScanIterations, cfg.RangesPerScan, cfg.ZipfReads, cfg.ZipfCacheBytes>>10)
	res, err := bench.RunBlocks(cfg)
	if err != nil {
		return err
	}

	fmt.Println(bench.RenderTable(
		[]string{"store", "segments", "blocks", "logical-bytes", "resident-bytes", "reduction"},
		[][]string{
			{res.Baseline.Codec, strconv.Itoa(res.Baseline.Segments), strconv.Itoa(res.Baseline.Blocks),
				strconv.FormatInt(res.Baseline.LogicalBytes, 10), strconv.FormatInt(res.Baseline.ResidentBytes, 10),
				fmt.Sprintf("%.2fx", res.Baseline.Reduction)},
			{res.Candidate.Codec, strconv.Itoa(res.Candidate.Segments), strconv.Itoa(res.Candidate.Blocks),
				strconv.FormatInt(res.Candidate.LogicalBytes, 10), strconv.FormatInt(res.Candidate.ResidentBytes, 10),
				fmt.Sprintf("%.2fx", res.Candidate.Reduction)},
		}))

	fmt.Println(bench.RenderTable(
		[]string{"store", "scan-p50(ms)", "scan-p99(ms)"},
		[][]string{
			{"baseline", fmt.Sprintf("%.2f", res.BaselineScanP50), fmt.Sprintf("%.2f", res.BaselineScanP99)},
			{"candidate", fmt.Sprintf("%.2f", res.CandidateScanP50), fmt.Sprintf("%.2f", res.CandidateScanP99)},
		}))

	fmt.Printf("zipf re-read: hits=%d misses=%d evictions=%d hit-rate=%.1f%%\n",
		res.ZipfHits, res.ZipfMisses, res.Evictions, 100*res.ZipfHitRate)
	fmt.Printf("pruned phase: blocks skipped=%d decoded=%d\n\n", res.PrunedBlocksSkipped, res.PrunedBlocksDecoded)

	gate := func(name string, ok bool) {
		verdict := "PASS"
		if !ok {
			verdict = "FAIL"
		}
		fmt.Printf("gate %-52s %s\n", name+":", verdict)
	}
	gate(fmt.Sprintf("blocks: resident bytes reduced >= %.0fx", cfg.ResidentReductionMin),
		res.Candidate.Reduction >= cfg.ResidentReductionMin)
	gate(fmt.Sprintf("blocks: compressed scan p99 <= baseline x %.2f", cfg.ScanP99NoiseFactor),
		res.CandidateScanP99 <= res.BaselineScanP99*cfg.ScanP99NoiseFactor)
	gate(fmt.Sprintf("blocks: zipf cache hit rate >= %.0f%%", 100*cfg.ZipfHitRateMin),
		res.ZipfHitRate >= cfg.ZipfHitRateMin)
	gate("blocks: pruned scans skip blocks without decoding",
		res.PrunedBlocksSkipped > 0 && res.PrunedBlocksSkipped > res.PrunedBlocksDecoded)
	fmt.Println()

	return writeSeriesJSON("BENCH_blocks.json", res)
}
