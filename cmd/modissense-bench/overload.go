package main

import (
	"fmt"
	"strconv"

	"modissense/internal/bench"
)

// runOverload drives the end-to-end overload-protection experiment: a
// stall storm on one node while concurrent interactive and batch clients
// saturate a deliberately small exec pool, once with the full protection
// stack (admission, bounded queue, breakers, retry budget) and once bare.
func runOverload(quick bool) error {
	cfg := bench.DefaultOverload()
	if quick {
		cfg.POIs = 250
		cfg.Population = 500
		cfg.Clients = 6
		cfg.RequestsPerClient = 10
	}
	if faultSchedule != "" {
		cfg.Schedule = faultSchedule
	}
	fmt.Println("== Overload protection: admission + shedding + breakers + retry budget under a stall storm ==")
	fmt.Printf("schedule: %q, %d clients x %d reqs, %d workers, %s deadline\n\n",
		cfg.Schedule, cfg.Clients, cfg.RequestsPerClient, cfg.Workers, cfg.QueryTimeout)
	modes, err := bench.RunOverload(cfg)
	if err != nil {
		return err
	}
	rows := make([][]string, 0, 2*len(modes))
	for _, m := range modes {
		for _, st := range []bench.OverloadClassStats{m.Interactive, m.Batch} {
			rows = append(rows, []string{
				m.Mode, st.Class, strconv.Itoa(st.Sent), strconv.Itoa(st.OK),
				strconv.Itoa(st.Rejected429), strconv.Itoa(st.Rejected503),
				strconv.Itoa(st.Timeouts), strconv.Itoa(st.Errors),
				strconv.Itoa(st.Malformed),
				fmt.Sprintf("%.1f", st.ServedP50Millis), fmt.Sprintf("%.1f", st.ServedP99Millis),
			})
		}
	}
	fmt.Println(bench.RenderTable(
		[]string{"mode", "class", "sent", "ok", "429", "503", "timeouts", "errors", "malformed", "p50(ms)", "p99(ms)"}, rows))
	for _, m := range modes {
		fmt.Printf("%-12s retries=%d hedges=%d budget(attempts=%d spent=%d denied=%d) breakers-open=%d queue=%d goroutines%+d\n",
			m.Mode, m.Retries, m.Hedges, m.BudgetAttempts, m.BudgetSpent, m.BudgetDenied,
			m.BreakersOpen, m.FinalQueueDepth, m.GoroutineDelta)
	}
	fmt.Println()

	var prot, unprot *bench.OverloadMode
	for i := range modes {
		switch modes[i].Mode {
		case "protected":
			prot = &modes[i]
		case "unprotected":
			unprot = &modes[i]
		}
	}
	if prot != nil && unprot != nil {
		gate := func(name string, ok bool) {
			verdict := "PASS"
			if !ok {
				verdict = "FAIL"
			}
			fmt.Printf("gate %-44s %s\n", name+":", verdict)
		}
		// Every protected answer is either service or a well-formed
		// rejection — never a deadline blowout or an internal error.
		gate("protected: no timeouts or 5xx errors",
			prot.Interactive.Timeouts == 0 && prot.Interactive.Errors == 0 &&
				prot.Batch.Timeouts == 0 && prot.Batch.Errors == 0)
		gate("protected: every overload answer well-formed",
			prot.Interactive.Malformed == 0 && prot.Batch.Malformed == 0)
		gate("protected: sheds under the storm",
			prot.Interactive.Rejected429+prot.Interactive.Rejected503+
				prot.Batch.Rejected429+prot.Batch.Rejected503 > 0)
		served := prot.Interactive.OK > 0
		gate("protected: interactive traffic still served", served)
		if served {
			gate(fmt.Sprintf("protected: served interactive p99 <= %s", cfg.LatencyBudget),
				prot.Interactive.ServedP99Millis <= cfg.LatencyBudget.Seconds()*1000)
		}
		// Retry amplification stays inside the gRPC-style bound: burst (10,
		// fixed in core wiring) plus ratio x primary attempts.
		gate("protected: retry+hedge amplification bounded",
			float64(prot.Retries+prot.Hedges) <= 10+cfg.RetryBudgetRatio*float64(prot.BudgetAttempts)+1e-9)
		gate("protected: exec queue drained, no goroutine leak",
			prot.FinalQueueDepth == 0 && prot.GoroutineDelta < 20)
		gate("unprotected: demonstrably degrades",
			unprot.Interactive.Timeouts+unprot.Interactive.Errors+unprot.Batch.Timeouts+unprot.Batch.Errors > 0 ||
				(prot.Interactive.OK > 0 && unprot.Interactive.ServedP99Millis >= 2*prot.Interactive.ServedP99Millis))
		fmt.Println()
	}
	return writeSeriesJSON("BENCH_overload.json", modes)
}
