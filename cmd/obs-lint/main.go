// Command obs-lint statically enforces the observability layer's bounded-
// cardinality contract: every label value handed to obs.L(...) or written
// into an obs.Label{...} literal must be a compile-time string constant.
// Label values that flow in from user input (keywords, user ids, tokens)
// would mint an unbounded number of series; the obs registry catches that
// at runtime with its per-family series cap, and this lint catches it at
// build time, before the code ever runs.
//
// The tool is AST-only and dependency-free. An expression counts as
// constant when it is a string literal, a concatenation of constants, or an
// identifier declared in a `const` block of the same package. Anything else
// — variables, function results, selector expressions — is rejected.
//
// Usage:
//
//	obs-lint [dir ...]        # default: . ; a trailing /... is accepted
//
// _test.go files are skipped (tests may synthesize labels to provoke the
// runtime cap), and so is internal/obs itself, whose exposition writer
// builds the reserved "le" bucket label from float bounds.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// obsImportPath is the package whose label constructors are audited.
const obsImportPath = "modissense/internal/obs"

type violation struct {
	pos token.Position
	msg string
}

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"."}
	}
	dirs := map[string]bool{}
	for _, root := range roots {
		root = strings.TrimSuffix(root, "/...")
		if root == "" {
			root = "."
		}
		if err := collectDirs(root, dirs); err != nil {
			fmt.Fprintf(os.Stderr, "obs-lint: %v\n", err)
			os.Exit(2)
		}
	}

	sorted := make([]string, 0, len(dirs))
	for d := range dirs {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted)

	fset := token.NewFileSet()
	var violations []violation
	audited := 0
	for _, dir := range sorted {
		v, n, err := lintDir(fset, dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "obs-lint: %s: %v\n", dir, err)
			os.Exit(2)
		}
		violations = append(violations, v...)
		audited += n
	}

	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "%s: %s\n", v.pos, v.msg)
		}
		fmt.Fprintf(os.Stderr, "obs-lint: %d non-constant label value(s) — label values must come from a fixed enum, never from user input\n", len(violations))
		os.Exit(1)
	}
	fmt.Printf("obs-lint: ok (%d label construction sites audited)\n", audited)
}

// collectDirs gathers every directory under root that can hold Go source,
// skipping VCS metadata, testdata trees and the obs package itself.
func collectDirs(root string, dirs map[string]bool) error {
	return filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if name == ".git" || name == "testdata" || (strings.HasPrefix(name, ".") && path != root) {
			return filepath.SkipDir
		}
		if filepath.ToSlash(path) == filepath.ToSlash(filepath.Join(root, "internal/obs")) ||
			strings.HasSuffix(filepath.ToSlash(path), "internal/obs") {
			return filepath.SkipDir
		}
		dirs[path] = true
		return nil
	})
}

// lintDir parses one package directory and returns its violations plus the
// number of audited label construction sites.
func lintDir(fset *token.FileSet, dir string) ([]violation, int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, 0, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, 0)
		if err != nil {
			return nil, 0, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, 0, nil
	}

	// Identifiers declared in const blocks anywhere in the package count as
	// compile-time constants for the folding check below.
	consts := map[string]bool{}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			decl, ok := n.(*ast.GenDecl)
			if !ok || decl.Tok != token.CONST {
				return true
			}
			for _, spec := range decl.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, id := range vs.Names {
						consts[id.Name] = true
					}
				}
			}
			return true
		})
	}

	var violations []violation
	audited := 0
	for _, f := range files {
		obsName := obsImportName(f)
		if obsName == "" {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.CallExpr:
				if sel, ok := node.Fun.(*ast.SelectorExpr); ok {
					if id, ok := sel.X.(*ast.Ident); ok && id.Name == obsName && sel.Sel.Name == "L" && len(node.Args) == 2 {
						audited++
						for i, arg := range node.Args {
							if !isConstString(arg, consts) {
								role := "key"
								if i == 1 {
									role = "value"
								}
								violations = append(violations, violation{
									pos: fset.Position(arg.Pos()),
									msg: fmt.Sprintf("obs.L %s %s is not a compile-time constant", role, exprString(arg)),
								})
							}
						}
					}
				}
			case *ast.CompositeLit:
				if sel, ok := node.Type.(*ast.SelectorExpr); ok {
					if id, ok := sel.X.(*ast.Ident); ok && id.Name == obsName && sel.Sel.Name == "Label" {
						audited++
						for i, elt := range node.Elts {
							expr := elt
							if kv, ok := elt.(*ast.KeyValueExpr); ok {
								expr = kv.Value
							} else if i > 1 {
								continue
							}
							if !isConstString(expr, consts) {
								violations = append(violations, violation{
									pos: fset.Position(expr.Pos()),
									msg: fmt.Sprintf("obs.Label field %s is not a compile-time constant", exprString(expr)),
								})
							}
						}
					}
				}
			}
			return true
		})
	}
	return violations, audited, nil
}

// obsImportName returns the local name the file imports obsImportPath
// under, or "" when the file does not import it.
func obsImportName(f *ast.File) string {
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil || path != obsImportPath {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name
		}
		return "obs"
	}
	return ""
}

// isConstString reports whether expr folds to a string constant: a string
// literal, a concatenation of constants, a parenthesized constant, or an
// identifier declared const in this package.
func isConstString(expr ast.Expr, consts map[string]bool) bool {
	switch e := expr.(type) {
	case *ast.BasicLit:
		return e.Kind == token.STRING
	case *ast.Ident:
		return consts[e.Name]
	case *ast.ParenExpr:
		return isConstString(e.X, consts)
	case *ast.BinaryExpr:
		return e.Op == token.ADD && isConstString(e.X, consts) && isConstString(e.Y, consts)
	}
	return false
}

// exprString renders a short source-ish form of expr for diagnostics.
func exprString(expr ast.Expr) string {
	switch e := expr.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if id, ok := e.X.(*ast.Ident); ok {
			return id.Name + "." + e.Sel.Name
		}
		return "…." + e.Sel.Name
	case *ast.CallExpr:
		return exprString(e.Fun) + "(…)"
	case *ast.BasicLit:
		return e.Value
	}
	return fmt.Sprintf("%T", expr)
}
