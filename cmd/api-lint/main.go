// Command api-lint keeps the API reference honest: it parses the route
// table literal in internal/core/router.go and the route table in API.md
// and fails when either side lists a METHOD+path the other does not — a
// route added without documentation, or documentation for a route that no
// longer exists.
//
// Usage:
//
//	api-lint [router.go] [API.md]
//
// Defaults to internal/core/router.go and API.md relative to the working
// directory, which is how `make lint-api` invokes it.
package main

import (
	"bufio"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	routerPath := "internal/core/router.go"
	docPath := "API.md"
	if len(os.Args) > 1 {
		routerPath = os.Args[1]
	}
	if len(os.Args) > 2 {
		docPath = os.Args[2]
	}

	code, err := routesFromSource(routerPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "api-lint: %v\n", err)
		os.Exit(1)
	}
	docs, err := routesFromDoc(docPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "api-lint: %v\n", err)
		os.Exit(1)
	}

	var problems []string
	for _, r := range sortedKeys(code) {
		if !docs[r] {
			problems = append(problems, fmt.Sprintf("route %q is served (%s) but missing from the %s route table", r, routerPath, docPath))
		}
	}
	for _, r := range sortedKeys(docs) {
		if !code[r] {
			problems = append(problems, fmt.Sprintf("route %q is documented (%s) but not present in %s's routeTable", r, docPath, routerPath))
		}
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "api-lint: "+p)
		}
		os.Exit(1)
	}
	fmt.Printf("api-lint: %d routes, routeTable and %s agree\n", len(code), docPath)
}

// routesFromSource extracts "METHOD /path" keys from the routeTable
// composite literal in the router source file.
func routesFromSource(path string) (map[string]bool, error) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		return nil, err
	}
	routes := map[string]bool{}
	ast.Inspect(file, func(n ast.Node) bool {
		spec, ok := n.(*ast.ValueSpec)
		if !ok || len(spec.Names) == 0 || spec.Names[0].Name != "routeTable" {
			return true
		}
		for _, v := range spec.Values {
			lit, ok := v.(*ast.CompositeLit)
			if !ok {
				continue
			}
			for _, elt := range lit.Elts {
				row, ok := elt.(*ast.CompositeLit)
				if !ok {
					continue
				}
				var method, routePath string
				for _, field := range row.Elts {
					kv, ok := field.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					key, ok := kv.Key.(*ast.Ident)
					if !ok {
						continue
					}
					val, ok := kv.Value.(*ast.BasicLit)
					if !ok || val.Kind != token.STRING {
						continue
					}
					s, err := strconv.Unquote(val.Value)
					if err != nil {
						continue
					}
					switch key.Name {
					case "method":
						method = s
					case "path":
						routePath = s
					}
				}
				if method != "" && routePath != "" {
					routes[method+" "+routePath] = true
				}
			}
		}
		return false
	})
	if len(routes) == 0 {
		return nil, fmt.Errorf("no routeTable entries found in %s", path)
	}
	return routes, nil
}

// docRouteRow matches one row of API.md's five-column route table: the
// method cell, then the backticked path cell. The metrics table and prose
// mentions of endpoints don't match this shape.
var docRouteRow = regexp.MustCompile("^\\| (GET|POST|PUT|PATCH|DELETE) \\| `(/[^`]*)` \\|(?:[^|]*\\|){3}$")

// routesFromDoc extracts "METHOD /path" keys from the API.md route table.
func routesFromDoc(path string) (map[string]bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	routes := map[string]bool{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		m := docRouteRow.FindStringSubmatch(strings.TrimRight(sc.Text(), " "))
		if m == nil {
			continue
		}
		routes[m[1]+" "+m[2]] = true
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(routes) == 0 {
		return nil, fmt.Errorf("no route-table rows found in %s", path)
	}
	return routes, nil
}

func sortedKeys(m map[string]bool) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
