// Package modissense is the public API of the MoDisSENSE platform
// reproduction: a distributed spatio-temporal and textual processing
// platform for social networking services (Mytilinis et al., SIGMOD 2015),
// rebuilt in pure Go on simulated substrates.
//
// The package re-exports the platform facade and the domain vocabulary so
// applications depend on a single import:
//
//	p, err := modissense.New(modissense.DefaultConfig())
//	...
//	acct, token, err := p.Users.SignIn("facebook", "facebook:1")
//	res, err := p.Search(ctx, modissense.SearchRequest{Token: token, ...})
//
// Query entry points take a context.Context; cancelling it (or letting the
// configured Config.QueryTimeout expire) aborts the region scans mid-flight.
//
// Architecture (one package per subsystem, all under internal/):
//
//   - geo        — haversine, geohash, grid index, R-tree
//   - sim        — discrete-event simulation kernel (virtual time)
//   - cluster    — simulated worker nodes + calibrated cost model
//   - kvstore    — LSM key-value store with regions and coprocessors (HBase role)
//   - relstore   — indexed relational store (PostgreSQL role)
//   - mapreduce  — MapReduce engine (Hadoop role)
//   - textproc   — Porter stemmer, BNS, Naive Bayes sentiment pipeline (Mahout role)
//   - dbscan     — sequential DBSCAN + MR-DBSCAN event detection
//   - trajectory — stay points, POI matching, daily blog generation
//   - social     — connector plugins, OAuth-style sign-in, data collection
//   - repos      — the six datastore repositories of the paper's §2.1
//   - hotin      — the periodic hotness/interest MapReduce job
//   - query      — coprocessor-based personalized query answering
//   - core       — the wired platform + REST API
//   - workload   — synthetic dataset generators (the paper's §3 datasets)
package modissense

import (
	"net/http"

	"modissense/internal/core"
	"modissense/internal/geo"
	"modissense/internal/model"
	"modissense/internal/query"
	"modissense/internal/repos"
	"modissense/internal/textproc"
)

// Platform is a fully wired MoDisSENSE instance. See core.Platform.
type Platform = core.Platform

// Config sizes a platform instance.
type Config = core.Config

// SearchRequest is a personalized POI search for an authenticated user.
type SearchRequest = core.SearchRequest

// EventDetectionParams tune the MR-DBSCAN event-detection run.
type EventDetectionParams = core.EventDetectionParams

// EventDetectionResult reports one event-detection run.
type EventDetectionResult = core.EventDetectionResult

// Domain types.
type (
	// POI is a point of interest.
	POI = model.POI
	// User is a registered platform user.
	User = model.User
	// Friend is one social connection.
	Friend = model.Friend
	// Visit is one recorded POI visit.
	Visit = model.Visit
	// Checkin is a raw social check-in.
	Checkin = model.Checkin
	// Comment is a classified textual opinion.
	Comment = model.Comment
	// GPSFix is one GPS trace sample.
	GPSFix = model.GPSFix
)

// Geometry types.
type (
	// Point is a WGS-84 coordinate.
	Point = geo.Point
	// Rect is a bounding box.
	Rect = geo.Rect
)

// Query types.
type (
	// QueryResult is a completed personalized query.
	QueryResult = query.Result
	// ScoredPOI is one ranked result.
	ScoredPOI = query.ScoredPOI
	// OrderBy selects the ranking criterion.
	OrderBy = query.OrderBy
)

// Ranking criteria.
const (
	ByInterest = query.ByInterest
	ByHotness  = query.ByHotness
)

// Visits-repository schema variants (the paper's replication-vs-join
// design decision).
const (
	SchemaReplicated = repos.SchemaReplicated
	SchemaNormalized = repos.SchemaNormalized
)

// New boots a platform from the configuration.
func New(cfg Config) (*Platform, error) { return core.New(cfg) }

// DefaultConfig returns a demo-scale configuration.
func DefaultConfig() Config { return core.DefaultConfig() }

// NewHandler returns the platform's REST API handler.
func NewHandler(p *Platform) http.Handler { return core.NewHandler(p) }

// RectAround returns the bounding box of the circle centered at p.
func RectAround(p Point, radiusMeters float64) Rect { return geo.RectAround(p, radiusMeters) }

// NewRect builds a normalized bounding box from two corners.
func NewRect(a, b Point) Rect { return geo.NewRect(a, b) }

// BaselineClassifierOptions is the paper's baseline preprocessing
// (lowercase + stopwords + stemming).
func BaselineClassifierOptions() textproc.PipelineOptions { return textproc.BaselineOptions() }

// OptimizedClassifierOptions is the paper's optimized preprocessing
// (baseline + tf + 2-grams + BNS + rare-term pruning).
func OptimizedClassifierOptions() textproc.PipelineOptions { return textproc.OptimizedOptions() }

// PipelineOptions tune the daily batch orchestration (collection → HotIn →
// event detection → blogs).
type PipelineOptions = core.PipelineOptions

// PipelineReport summarizes one daily batch run.
type PipelineReport = core.PipelineReport
