// Trending events: the paper's configurable-granularity trending query —
// "show me the three hottest places visited by my x specific friends the
// last y hours" — plus the non-personalized variant served from the
// precomputed hotness ranking.
//
// Run with: go run ./examples/trending_events
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"modissense"
)

func main() {
	cfg := modissense.DefaultConfig()
	cfg.POIs = 400
	cfg.NetworkPopulation = 800
	cfg.CheckinsPerDay = 3
	p, err := modissense.New(cfg)
	if err != nil {
		log.Fatalf("boot: %v", err)
	}

	// Register a crowd of users whose activity will drive the rankings.
	var token string
	for i := 1; i <= 25; i++ {
		_, tok, err := p.Users.SignIn("foursquare", fmt.Sprintf("foursquare:%d", i))
		if err != nil {
			log.Fatal(err)
		}
		if i == 1 {
			token = tok
		}
	}
	_ = token

	// Collect three days of check-ins.
	since := time.Date(2015, 5, 29, 0, 0, 0, 0, time.UTC)
	until := since.Add(72 * time.Hour)
	stats, err := p.Collect(since, until)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collected %d check-ins from %d users\n", stats.Checkins, stats.UsersScanned)

	// HotIn update over the full window powers the non-personalized path.
	if _, err := p.UpdateHotIn(since, until); err != nil {
		log.Fatal(err)
	}

	bounds := modissense.NewRect(
		modissense.Point{Lat: 34.8, Lon: 19.3},
		modissense.Point{Lat: 41.8, Lon: 28.3},
	)

	// Non-personalized: hottest places of the last 3 days, platform-wide.
	trend, err := p.Trending(context.Background(), &bounds, nil, since, until, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nhottest places, all users, last 72h:")
	for i, s := range trend.POIs {
		fmt.Printf("  %d. %-20s hotness %.2f\n", i+1, s.POI.Name, s.POI.Hotness)
	}

	// Personalized, tighter granularity: hottest places among 10 specific
	// friends in the final 24 hours only.
	friends := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	personal, err := p.Trending(context.Background(), &bounds, friends, until.Add(-24*time.Hour), until, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nhottest places among 10 chosen friends, last 24h:")
	for i, s := range personal.POIs {
		fmt.Printf("  %d. %-20s %d friend visits\n", i+1, s.POI.Name, s.Visits)
	}
	fmt.Printf("\n(personalized trending latency: %.0f ms simulated)\n", personal.LatencySeconds*1000)
}
