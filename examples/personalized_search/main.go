// Personalized search: the paper's demo scenario (§4) — two users with
// completely different social profiles run the same "restaurant" query on
// the same area and get different answers. One user's friends love fast
// food; the other's prefer traditional tavernas.
//
// Run with: go run ./examples/personalized_search
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"strings"
	"time"

	"modissense"
)

func main() {
	cfg := modissense.DefaultConfig()
	cfg.POIs = 600
	cfg.NetworkPopulation = 500
	p, err := modissense.New(cfg)
	if err != nil {
		log.Fatalf("boot: %v", err)
	}

	// Split the catalog's Athens-area restaurants into fast food and
	// tavernas.
	athens := modissense.RectAround(modissense.Point{Lat: 37.9838, Lon: 23.7275}, 25000)
	var fastfood, tavernas []modissense.POI
	for _, poi := range p.Catalog() {
		if !athens.Contains(modissense.Point{Lat: poi.Lat, Lon: poi.Lon}) {
			continue
		}
		switch {
		case strings.HasPrefix(poi.Name, "fastfood"):
			fastfood = append(fastfood, poi)
		case strings.HasPrefix(poi.Name, "taverna"):
			tavernas = append(tavernas, poi)
		}
	}
	fmt.Printf("Athens area: %d fast-food places, %d tavernas\n", len(fastfood), len(tavernas))

	// Fabricate two friend circles with opposite tastes: friends 1001-1020
	// adore fast food (grade ≈ 5) and dislike tavernas; friends 2001-2020
	// are the opposite. Visits go straight into the Visits repository, the
	// same store the Data Collection module writes.
	rng := rand.New(rand.NewSource(7))
	base := time.Date(2015, 5, 1, 12, 0, 0, 0, time.UTC)
	storeVisits := func(friendLo, friendHi int64, loved, hated []modissense.POI) {
		for uid := friendLo; uid <= friendHi; uid++ {
			for i := 0; i < 15; i++ {
				poi := loved[rng.Intn(len(loved))]
				grade := 4.2 + rng.Float64()*0.8
				if i%5 == 4 { // occasionally visit (and pan) the other kind
					poi = hated[rng.Intn(len(hated))]
					grade = 1 + rng.Float64()
				}
				v := modissense.Visit{
					UserID:  uid,
					Time:    base.Add(time.Duration(i) * time.Hour).UnixMilli(),
					Grade:   grade,
					Network: "facebook",
					POI:     poi,
				}
				if err := p.Visits.Store(v); err != nil {
					log.Fatalf("store visit: %v", err)
				}
			}
		}
	}
	storeVisits(1001, 1020, fastfood, tavernas)
	storeVisits(2001, 2020, tavernas, fastfood)

	// Both demo users run the *same* query: "restaurant" in Athens, ranked
	// by their friends' opinions.
	_, tokenA, err := p.Users.SignIn("facebook", "facebook:21")
	if err != nil {
		log.Fatal(err)
	}
	_, tokenB, err := p.Users.SignIn("facebook", "facebook:22")
	if err != nil {
		log.Fatal(err)
	}
	runSearch := func(name, token string, friendLo, friendHi int64) {
		var friends []int64
		for id := friendLo; id <= friendHi; id++ {
			friends = append(friends, id)
		}
		res, err := p.Search(context.Background(), modissense.SearchRequest{
			Token:   token,
			BBox:    &athens,
			Keyword: "restaurant",
			Friends: friends,
			From:    base.Add(-time.Hour),
			To:      base.Add(24 * time.Hour),
			OrderBy: modissense.ByInterest,
			Limit:   5,
		})
		if err != nil {
			log.Fatalf("search: %v", err)
		}
		fmt.Printf("\n%s — top restaurants by friends' opinion (%.0f ms):\n", name, res.LatencySeconds*1000)
		for i, s := range res.POIs {
			fmt.Printf("  %d. %-18s score %.2f (%d friend visits)\n", i+1, s.POI.Name, s.Score, s.Visits)
		}
	}
	runSearch("user A (fast-food friends)", tokenA, 1001, 1020)
	runSearch("user B (taverna friends)", tokenB, 2001, 2020)

	fmt.Println("\nSame query, same map area — different friends, different answers.")
}
