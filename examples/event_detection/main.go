// Event detection: plant a spontaneous gathering (a concert crowd) in the
// GPS trace stream and watch the MR-DBSCAN Event Detection module discover
// it as a new POI — while traces near already-known POIs are filtered out
// and ordinary movement stays noise.
//
// Run with: go run ./examples/event_detection
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"modissense"
	"modissense/internal/workload"
)

func main() {
	cfg := modissense.DefaultConfig()
	cfg.POIs = 300
	cfg.NetworkPopulation = 500
	p, err := modissense.New(cfg)
	if err != nil {
		log.Fatalf("boot: %v", err)
	}
	_, token, err := p.Users.SignIn("twitter", "twitter:1")
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(3))
	evening := time.Date(2015, 5, 30, 20, 0, 0, 0, time.UTC)

	// A concert crowd gathers on an empty beach in the Aegean: 250 devices
	// within ~50 m for three hours.
	concert := modissense.Point{Lat: 36.8, Lon: 25.4}
	crowd := workload.GenGathering(rng, concert, 250, 50, evening, evening.Add(3*time.Hour))
	if _, err := p.PushGPS(token, crowd); err != nil {
		log.Fatal(err)
	}

	// Background traffic: people dwelling at already-known POIs (must be
	// filtered out, not re-detected) ...
	known := p.Catalog()[0]
	nearKnown := workload.GenGathering(rng, modissense.Point{Lat: known.Lat, Lon: known.Lon},
		120, 40, evening, evening.Add(2*time.Hour))
	if _, err := p.PushGPS(token, nearKnown); err != nil {
		log.Fatal(err)
	}
	// ... and scattered noise across the country (must stay noise).
	bounds := workload.GreeceBounds()
	var noise []modissense.GPSFix
	for i := 0; i < 400; i++ {
		noise = append(noise, modissense.GPSFix{
			Lat:  bounds.MinLat + rng.Float64()*(bounds.MaxLat-bounds.MinLat),
			Lon:  bounds.MinLon + rng.Float64()*(bounds.MaxLon-bounds.MinLon),
			Time: evening.UnixMilli(),
		})
	}
	if _, err := p.PushGPS(token, noise); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pushed %d GPS fixes (concert crowd + known-POI dwellers + noise)\n",
		len(crowd)+len(nearKnown)+len(noise))

	before := p.POIs.Len()
	res, err := p.DetectEvents(context.Background(), modissense.EventDetectionParams{Eps: 120, MinPts: 15})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scanned %d traces, clustered %d, MR-DBSCAN makespan %.2f simulated s\n",
		res.TracesScanned, res.TracesClustered, res.SimulatedSeconds)
	fmt.Printf("catalog grew from %d to %d POIs\n", before, p.POIs.Len())
	for _, poi := range res.NewPOIs {
		d := haversineKm(concert, modissense.Point{Lat: poi.Lat, Lon: poi.Lon})
		fmt.Printf("  new event POI %q at (%.4f, %.4f) — %.0f m from the planted concert\n",
			poi.Name, poi.Lat, poi.Lon, d*1000)
	}
	if len(res.NewPOIs) == 1 {
		fmt.Println("exactly the planted gathering was detected; known POIs and noise were ignored ✓")
	}
}

// haversineKm computes the great-circle distance in kilometers.
func haversineKm(a, b modissense.Point) float64 {
	const r = 6371.0
	lat1, lat2 := a.Lat*math.Pi/180, b.Lat*math.Pi/180
	dLat := lat2 - lat1
	dLon := (b.Lon - a.Lon) * math.Pi / 180
	s1, s2 := math.Sin(dLat/2), math.Sin(dLon/2)
	h := s1*s1 + math.Cos(lat1)*math.Cos(lat2)*s2*s2
	return 2 * r * math.Asin(math.Sqrt(h))
}
