// Quickstart: boot a platform, register a user through simulated OAuth,
// collect a week of social activity, run the HotIn update, and issue one
// personalized and one trending query.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"modissense"
)

func main() {
	// Boot a demo-scale platform: 4 simulated worker nodes, a POI catalog
	// of Greek venues, three simulated social networks.
	cfg := modissense.DefaultConfig()
	cfg.POIs = 400
	cfg.NetworkPopulation = 500
	p, err := modissense.New(cfg)
	if err != nil {
		log.Fatalf("boot: %v", err)
	}
	fmt.Printf("platform up: %d POIs, %d-node cluster, networks %v\n",
		p.POIs.Len(), cfg.Nodes, p.Users.Networks())

	// Sign in with social credentials (no username/password — OAuth only).
	acct, token, err := p.Users.SignIn("facebook", "facebook:1")
	if err != nil {
		log.Fatalf("sign in: %v", err)
	}
	if _, err := p.Users.Link(token, "foursquare", "foursquare:1"); err != nil {
		log.Fatalf("link: %v", err)
	}
	fmt.Printf("signed in as user %d with networks facebook+foursquare\n", acct.UserID)

	// Collect one week of check-ins and comments from the linked networks;
	// each comment is sentiment-classified at ingest.
	since := time.Date(2015, 5, 1, 0, 0, 0, 0, time.UTC)
	until := since.Add(7 * 24 * time.Hour)
	stats, err := p.Collect(since, until)
	if err != nil {
		log.Fatalf("collect: %v", err)
	}
	fmt.Printf("collected %d check-ins from %d users (%d friend records)\n",
		stats.Checkins, stats.UsersScanned, stats.FriendsStored)

	// Aggregate hotness/interest over the window (the HotIn MapReduce job).
	hot, err := p.UpdateHotIn(since, until)
	if err != nil {
		log.Fatalf("hotin: %v", err)
	}
	fmt.Printf("hotin update: %d POIs refreshed in %.2f simulated seconds\n",
		hot.POIsUpdated, hot.SimulatedSeconds)

	// Personalized search: top venues in all of Greece judged by the
	// user's own visit history (user 1 is its own best critic here).
	bounds := modissense.NewRect(
		modissense.Point{Lat: 34.8, Lon: 19.3},
		modissense.Point{Lat: 41.8, Lon: 28.3},
	)
	res, err := p.Search(context.Background(), modissense.SearchRequest{
		Token:   token,
		BBox:    &bounds,
		Friends: []int64{1},
		From:    since,
		To:      until,
		OrderBy: modissense.ByInterest,
		Limit:   5,
	})
	if err != nil {
		log.Fatalf("search: %v", err)
	}
	fmt.Printf("\npersonalized top-5 (simulated latency %.0f ms):\n", res.LatencySeconds*1000)
	for i, s := range res.POIs {
		fmt.Printf("  %d. %-20s score %.2f (%d visits)\n", i+1, s.POI.Name, s.Score, s.Visits)
	}

	// Trending: the hottest places platform-wide, from the precomputed
	// hotness ranking.
	trend, err := p.Trending(context.Background(), &bounds, nil, since, until, 5)
	if err != nil {
		log.Fatalf("trending: %v", err)
	}
	fmt.Println("\ntrending top-5 (non-personalized):")
	for i, s := range trend.POIs {
		fmt.Printf("  %d. %-20s hotness %.2f\n", i+1, s.POI.Name, s.POI.Hotness)
	}
}
