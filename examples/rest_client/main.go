// REST client: run a MoDisSENSE server in-process and drive it purely
// through the typed HTTP client — the integration path an external
// application (or the paper's mobile frontends) would take.
//
// Run with: go run ./examples/rest_client
package main

import (
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"modissense"
	"modissense/client"
)

func main() {
	// Boot a platform and expose it over HTTP (an httptest server keeps
	// the example self-contained; point the client at any modissense-server
	// URL in real use).
	cfg := modissense.DefaultConfig()
	cfg.POIs = 300
	cfg.NetworkPopulation = 400
	p, err := modissense.New(cfg)
	if err != nil {
		log.Fatalf("boot: %v", err)
	}
	srv := httptest.NewServer(modissense.NewHandler(p))
	defer srv.Close()
	fmt.Printf("server listening at %s\n", srv.URL)

	c, err := client.New(srv.URL, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Sign in over HTTP and link a second network.
	sess, err := c.SignIn("facebook", "facebook:1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("signed in as user %d (token %.8s…)\n", sess.UserID, sess.Token)
	if _, err := c.Link("foursquare", "foursquare:1"); err != nil {
		log.Fatal(err)
	}
	friends, err := c.Friends("")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d friends across linked networks\n", len(friends))

	// Drive the admin surface: collect a week, refresh hotness.
	since := time.Date(2015, 5, 1, 0, 0, 0, 0, time.UTC)
	until := since.Add(7 * 24 * time.Hour)
	collectStats, err := c.AdminCollect(since, until)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collected %v check-ins\n", collectStats["Checkins"])
	if _, err := c.AdminHotIn(since, until); err != nil {
		log.Fatal(err)
	}

	// Personalized search over the wire.
	res, err := c.Search(client.SearchParams{
		MinLat: 34.8, MinLon: 19.3, MaxLat: 41.8, MaxLon: 28.3,
		Friends: []int64{1},
		From:    since, To: until,
		OrderBy: "interest",
		Limit:   3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntop-3 by friends' opinion (%.0f ms simulated):\n", res.LatencySeconds*1000)
	for i, s := range res.POIs {
		fmt.Printf("  %d. %-18s %.2f\n", i+1, s.POI.Name, s.Score)
	}

	// Operational snapshot.
	stats, err := c.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nserver stats: %v POIs, %v visit regions, schema %v\n",
		stats["pois"], stats["visit_regions"], stats["visit_schema"])
}
