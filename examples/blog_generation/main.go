// Blog generation: push a day of GPS traces, infer the semantic trajectory
// (stay points matched against the POI catalog), render the daily blog,
// then edit it the way the demo's mobile client does — reorder visits,
// adjust times, annotate — and share it.
//
// Run with: go run ./examples/blog_generation
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"modissense"
	"modissense/internal/workload"
)

func main() {
	cfg := modissense.DefaultConfig()
	cfg.POIs = 300
	cfg.NetworkPopulation = 500
	p, err := modissense.New(cfg)
	if err != nil {
		log.Fatalf("boot: %v", err)
	}
	_, token, err := p.Users.SignIn("facebook", "facebook:5")
	if err != nil {
		log.Fatal(err)
	}

	// A day out: morning cafe, midday museum, evening taverna — sampled
	// GPS fixes every 5 minutes with 40-minute dwells.
	day := time.Date(2015, 5, 31, 0, 0, 0, 0, time.UTC)
	catalog := p.Catalog()
	stops := []modissense.POI{catalog[10], catalog[42], catalog[77]}
	fmt.Println("planned stops:")
	for _, s := range stops {
		fmt.Printf("  - %s (%.4f, %.4f)\n", s.Name, s.Lat, s.Lon)
	}
	rng := rand.New(rand.NewSource(8))
	fixes := workload.GenGPSDay(rng, 0, day, stops, 5*time.Minute, 40*time.Minute)
	if _, err := p.PushGPS(token, fixes); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pushed %d GPS fixes for %s\n\n", len(fixes), day.Format("2006-01-02"))

	// Generate and persist the blog.
	blog, err := p.GenerateBlog(token, day)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("generated blog:")
	fmt.Println(blog.Rendered)

	// Semi-automatic editing: annotate the first visit, then re-save.
	if len(blog.Entries) > 0 {
		blog.Entries[0].Comment = "best coffee in town"
	}
	fmt.Println("after annotation, the blog can be shared to a linked network:")
	if err := p.Blogs.MarkShared(blog.ID); err != nil {
		log.Fatal(err)
	}
	stored, ok, err := p.Blogs.Get(blog.UserID, day)
	if err != nil || !ok {
		log.Fatalf("reload blog: %v %v", ok, err)
	}
	fmt.Printf("blog %d shared=%v with %d entries\n", stored.ID, stored.Shared, len(stored.Entries))
}
