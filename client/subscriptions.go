package client

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Subscription is the client view of one standing spatio-textual query.
type Subscription struct {
	ID            string   `json:"id"`
	UserID        int64    `json:"user_id"`
	MinLat        float64  `json:"min_lat"`
	MinLon        float64  `json:"min_lon"`
	MaxLat        float64  `json:"max_lat"`
	MaxLon        float64  `json:"max_lon"`
	Keywords      []string `json:"keywords"`
	CreatedMillis int64    `json:"created_ms"`
	ExpiresMillis int64    `json:"expires_ms"`
}

// SubscriptionEvent is one matched check-in delivered to a subscription.
// Seq is the resume cursor: pass the last seen Seq back to PollEvents or
// StreamEvents to receive only newer events.
type SubscriptionEvent struct {
	Seq            uint64  `json:"seq"`
	SubscriptionID string  `json:"subscription_id"`
	UserID         int64   `json:"user_id"`
	POIID          int64   `json:"poi_id"`
	POIName        string  `json:"poi_name"`
	Lat            float64 `json:"lat"`
	Lon            float64 `json:"lon"`
	TimeMillis     int64   `json:"time"`
	Grade          float64 `json:"grade"`
	Network        string  `json:"network"`
}

// SubscriptionSpec is the create request: the region of interest, the
// keyword set (empty = purely spatial) and an optional TTL (0 = server
// default; the server clamps long TTLs).
type SubscriptionSpec struct {
	MinLat, MinLon, MaxLat, MaxLon float64
	Keywords                       []string
	TTL                            time.Duration
}

// CreateSubscription registers a standing query for the signed-in user.
// An overloaded answer (registry full: 503, per-user quota: 429) is
// retried per the client's RetryPolicy and, if still refused, satisfies
// IsOverloaded.
func (c *Client) CreateSubscription(spec SubscriptionSpec) (Subscription, error) {
	var out Subscription
	err := c.do(http.MethodPost, "/api/v1/subscriptions", map[string]interface{}{
		"token":   c.token,
		"min_lat": spec.MinLat, "min_lon": spec.MinLon,
		"max_lat": spec.MaxLat, "max_lon": spec.MaxLon,
		"keywords":    spec.Keywords,
		"ttl_seconds": int(spec.TTL / time.Second),
	}, &out)
	return out, err
}

// subscriptionPage mirrors the server's uniform list envelope.
type subscriptionPage struct {
	Items      []Subscription `json:"items"`
	NextCursor string         `json:"next_cursor"`
}

// Subscriptions lists the signed-in user's live subscriptions, one page
// at a time: limit bounds the page (0 = server maximum) and cursor
// resumes a previous listing ("" = first page). The returned cursor is ""
// on the final page.
func (c *Client) Subscriptions(limit int, cursor string) ([]Subscription, string, error) {
	v := url.Values{}
	v.Set("token", c.token)
	if limit > 0 {
		v.Set("limit", strconv.Itoa(limit))
	}
	if cursor != "" {
		v.Set("cursor", cursor)
	}
	var out subscriptionPage
	if err := c.do(http.MethodGet, "/api/v1/subscriptions?"+v.Encode(), nil, &out); err != nil {
		return nil, "", err
	}
	return out.Items, out.NextCursor, nil
}

// GetSubscription fetches one of the signed-in user's subscriptions.
func (c *Client) GetSubscription(id string) (Subscription, error) {
	var out Subscription
	err := c.do(http.MethodGet, "/api/v1/subscriptions/"+url.PathEscape(id)+"?token="+url.QueryEscape(c.token), nil, &out)
	return out, err
}

// DeleteSubscription cancels one of the signed-in user's subscriptions.
func (c *Client) DeleteSubscription(id string) error {
	return c.do(http.MethodDelete, "/api/v1/subscriptions/"+url.PathEscape(id)+"?token="+url.QueryEscape(c.token), nil, nil)
}

// eventPage mirrors the events endpoint's long-poll envelope.
type eventPage struct {
	Items      []SubscriptionEvent `json:"items"`
	NextCursor string              `json:"next_cursor"`
}

// PollEvents long-polls one subscription for events newer than cursor,
// holding the request up to wait when none are buffered (0 = return
// immediately; the server clamps long waits). It returns the events and
// the cursor to resume from.
func (c *Client) PollEvents(ctx context.Context, id string, cursor uint64, limit int, wait time.Duration) ([]SubscriptionEvent, uint64, error) {
	v := url.Values{}
	v.Set("token", c.token)
	v.Set("cursor", strconv.FormatUint(cursor, 10))
	if limit > 0 {
		v.Set("limit", strconv.Itoa(limit))
	}
	if wait > 0 {
		v.Set("wait_ms", strconv.FormatInt(int64(wait/time.Millisecond), 10))
	}
	var out eventPage
	if err := c.doCtx(ctx, http.MethodGet, "/api/v1/subscriptions/"+url.PathEscape(id)+"/events?"+v.Encode(), nil, &out); err != nil {
		return nil, cursor, err
	}
	next := cursor
	if out.NextCursor != "" {
		if parsed, err := strconv.ParseUint(out.NextCursor, 10, 64); err == nil {
			next = parsed
		}
	}
	return out.Items, next, nil
}

// EventStream iterates a subscription's SSE stream:
//
//	stream, err := c.StreamEvents(ctx, sub.ID, 0)
//	defer stream.Close()
//	for stream.Next() {
//	    ev := stream.Event()
//	    ...
//	}
//	if err := stream.Err(); err != nil { ... }
//
// Next blocks until the next event arrives, the stream ends (subscription
// deleted or expired — Err returns nil), the context is cancelled, or the
// connection fails (Err returns the cause).
type EventStream struct {
	body   io.ReadCloser
	cancel context.CancelFunc
	sc     *bufio.Scanner
	cur    SubscriptionEvent
	err    error
	done   bool
	// closed flags an explicit Close, possibly from another goroutine while
	// Next blocks in a read; the resulting read error is then suppressed.
	closed atomic.Bool
}

// StreamEvents opens a Server-Sent-Events stream over one subscription's
// events, resuming after cursor (0 = from the oldest buffered event).
// Cancelling ctx ends the stream. The caller must Close the stream.
func (c *Client) StreamEvents(ctx context.Context, id string, cursor uint64) (*EventStream, error) {
	v := url.Values{}
	v.Set("token", c.token)
	if cursor > 0 {
		v.Set("cursor", strconv.FormatUint(cursor, 10))
	}
	ctx, cancel := context.WithCancel(ctx)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.baseURL+"/api/v1/subscriptions/"+url.PathEscape(id)+"/events?"+v.Encode(), nil)
	if err != nil {
		cancel()
		return nil, fmt.Errorf("client: build request: %w", err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.http.Do(req)
	if err != nil {
		cancel()
		return nil, fmt.Errorf("client: open event stream: %w", err)
	}
	c.setLastRequestID(resp.Header.Get("X-Request-ID"))
	if resp.StatusCode != http.StatusOK {
		apiErr := &APIError{Status: resp.StatusCode, RequestID: resp.Header.Get("X-Request-ID")}
		var e apiEnvelope
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error.Message != "" {
			apiErr.Code = e.Error.Code
			apiErr.Message = e.Error.Message
		} else {
			apiErr.Message = fmt.Sprintf("status %d", resp.StatusCode)
		}
		resp.Body.Close()
		cancel()
		return nil, fmt.Errorf("client: open event stream: %w", apiErr)
	}
	return &EventStream{body: resp.Body, cancel: cancel, sc: bufio.NewScanner(resp.Body)}, nil
}

// Next advances to the next event, blocking until one arrives. It returns
// false when the stream ends; check Err to distinguish a clean end
// (subscription gone, stream closed: nil) from a transport failure.
func (s *EventStream) Next() bool {
	if s.done {
		return false
	}
	var event, data string
	for s.sc.Scan() {
		line := s.sc.Text()
		switch {
		case line == "":
			// Frame boundary: dispatch what we collected.
			if event == "gone" {
				s.done = true
				return false
			}
			if data != "" && (event == "" || event == "checkin") {
				var ev SubscriptionEvent
				if err := json.Unmarshal([]byte(data), &ev); err != nil {
					s.err = fmt.Errorf("client: decode event: %w", err)
					s.done = true
					return false
				}
				s.cur = ev
				return true
			}
			event, data = "", ""
		case strings.HasPrefix(line, ":"): // keep-alive comment
		case strings.HasPrefix(line, "event:"):
			event = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:"):
			data = strings.TrimSpace(strings.TrimPrefix(line, "data:"))
		}
	}
	// Scanner stopped: closed stream or transport error.
	if err := s.sc.Err(); err != nil && s.err == nil && !s.closed.Load() {
		s.err = err
	}
	s.done = true
	return false
}

// Event returns the event Next advanced to.
func (s *EventStream) Event() SubscriptionEvent { return s.cur }

// Err returns the first error the stream hit (nil after a clean end).
func (s *EventStream) Err() error { return s.err }

// Close tears the stream down; always call it when done. Closing from
// another goroutine unblocks a Next in flight (which then returns false
// with a nil Err).
func (s *EventStream) Close() error {
	s.closed.Store(true)
	s.cancel()
	return s.body.Close()
}
