package client

import (
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"modissense/internal/core"
	"modissense/internal/model"
	"modissense/internal/workload"
)

func newServerAndClient(t *testing.T) (*Client, *core.Platform) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.POIs = 200
	cfg.NetworkPopulation = 300
	cfg.MeanFriends = 10
	cfg.ClassifierTrainDocs = 300
	p, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(core.NewHandler(p))
	t.Cleanup(srv.Close)
	c, err := New(srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	return c, p
}

func TestNewValidation(t *testing.T) {
	if _, err := New("", nil); err == nil {
		t.Error("empty URL must fail")
	}
	if _, err := New("ftp://nope", nil); err == nil {
		t.Error("non-http scheme must fail")
	}
	if _, err := New("http://localhost:1", nil); err != nil {
		t.Errorf("valid URL rejected: %v", err)
	}
}

func TestClientFullFlow(t *testing.T) {
	c, p := newServerAndClient(t)

	// Sign in, link, friends.
	sess, err := c.SignIn("facebook", "facebook:1")
	if err != nil {
		t.Fatal(err)
	}
	if sess.Token == "" || c.Token() != sess.Token {
		t.Fatal("token not stored on client")
	}
	if _, err := c.Link("twitter", "twitter:1"); err != nil {
		t.Fatal(err)
	}
	friends, err := c.Friends("")
	if err != nil {
		t.Fatal(err)
	}
	if len(friends) == 0 {
		t.Fatal("no friends")
	}
	fb, err := c.Friends("facebook")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fb {
		if f.Network != "facebook" {
			t.Fatal("network filter leaked")
		}
	}

	// Admin: collect + hotin.
	since := time.Date(2015, 5, 1, 0, 0, 0, 0, time.UTC)
	until := since.Add(5 * 24 * time.Hour)
	stats, err := c.AdminCollect(since, until)
	if err != nil {
		t.Fatal(err)
	}
	if stats["Checkins"] == nil {
		t.Errorf("collect stats = %v", stats)
	}
	if _, err := c.AdminHotIn(since, until); err != nil {
		t.Fatal(err)
	}

	// Search + POI detail.
	bounds := workload.GreeceBounds()
	res, err := c.Search(SearchParams{
		MinLat: bounds.MinLat, MinLon: bounds.MinLon,
		MaxLat: bounds.MaxLat, MaxLon: bounds.MaxLon,
		Friends: []int64{1},
		From:    since, To: until,
		OrderBy: "interest",
		Limit:   5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.POIs) == 0 || res.LatencySeconds <= 0 {
		t.Fatalf("search = %+v", res)
	}
	poi, err := c.POI(res.POIs[0].POI.ID)
	if err != nil {
		t.Fatal(err)
	}
	if poi.ID != res.POIs[0].POI.ID {
		t.Error("POI mismatch")
	}
	if _, err := c.POI(999999999); err == nil {
		t.Error("missing POI must error with the server message")
	}

	// Trending.
	trend, err := c.Trending(bounds.MinLat, bounds.MinLon, bounds.MaxLat, bounds.MaxLon, 7*24, 3, until)
	if err != nil {
		t.Fatal(err)
	}
	if len(trend.POIs) == 0 {
		t.Error("trending empty")
	}

	// GPS + blog.
	day := time.Date(2015, 5, 30, 0, 0, 0, 0, time.UTC)
	fixes := workload.GenGPSDay(rand.New(rand.NewSource(3)), 0, day, p.Catalog()[:2], 5*time.Minute, 40*time.Minute)
	stored, err := c.PushGPS(fixes)
	if err != nil {
		t.Fatal(err)
	}
	if stored != len(fixes) {
		t.Errorf("stored %d of %d", stored, len(fixes))
	}
	blog, err := c.GenerateBlog(day)
	if err != nil {
		t.Fatal(err)
	}
	if blog.ID == 0 || blog.Rendered == "" {
		t.Fatalf("blog = %+v", blog)
	}
	got, err := c.GetBlog(day)
	if err != nil || got.ID != blog.ID {
		t.Fatalf("GetBlog = %+v, %v", got, err)
	}
	if _, err := c.GetBlog(day.Add(72 * time.Hour)); err == nil {
		t.Error("missing blog must error")
	}
	list, err := c.Blogs()
	if err != nil || len(list) != 1 || list[0].ID != blog.ID {
		t.Fatalf("Blogs() = %+v, %v", list, err)
	}

	// Stats.
	snapshot, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if snapshot["pois"] == nil {
		t.Errorf("stats = %v", snapshot)
	}
}

func TestClientEventDetection(t *testing.T) {
	c, _ := newServerAndClient(t)
	if _, err := c.SignIn("twitter", "twitter:5"); err != nil {
		t.Fatal(err)
	}
	start := time.Date(2015, 5, 30, 20, 0, 0, 0, time.UTC)
	crowd := workload.GenGathering(rand.New(rand.NewSource(5)),
		workload.GreeceBounds().Center(), 120, 40, start, start.Add(2*time.Hour))
	if _, err := c.PushGPS(crowd); err != nil {
		t.Fatal(err)
	}
	out, err := c.AdminDetectEvents(120, 10)
	if err != nil {
		t.Fatal(err)
	}
	if out["TracesScanned"] == nil {
		t.Errorf("detection = %v", out)
	}
	if _, err := c.AdminDetectEvents(0, 0); err == nil {
		t.Error("invalid params must error")
	}
}

func TestClientAuthErrors(t *testing.T) {
	c, _ := newServerAndClient(t)
	// Not signed in: token is empty, server rejects.
	if _, err := c.Friends(""); err == nil {
		t.Error("unauthenticated friends must fail")
	}
	if _, err := c.PushGPS([]model.GPSFix{{Lat: 1, Lon: 1}}); err == nil {
		t.Error("unauthenticated gps must fail")
	}
	if _, err := c.SignIn("facebook", "garbage"); err == nil {
		t.Error("bad credentials must fail")
	}
}
