package client

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"modissense/internal/model"
)

func TestClientPushCheckins(t *testing.T) {
	c, p := newServerAndClient(t)
	sess, err := c.SignIn("facebook", "facebook:1")
	if err != nil {
		t.Fatal(err)
	}
	poi := p.Catalog()[0]

	res, err := c.PushCheckins([]Checkin{
		{POIID: poi.ID, Time: 1000, Grade: 4, Network: "facebook"},
		{POIID: poi.ID, Time: 2000, Grade: 5, Network: "facebook"},
		{POIID: 99_999_999, Time: 3000, Network: "facebook"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stored != 2 {
		t.Errorf("stored = %d, want 2", res.Stored)
	}
	if len(res.Errors) != 1 || res.Errors[0].Index != 2 || res.Errors[0].Code != "not_found" {
		t.Errorf("item errors = %+v, want index 2 / not_found", res.Errors)
	}

	count := 0
	if err := p.Visits.ScanUser(sess.UserID, 0, 10_000, func(model.Visit) bool {
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Errorf("server stored %d visits, want 2", count)
	}

	// An unauthenticated client gets the typed 401.
	c2, err := New(c.baseURL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.PushCheckins([]Checkin{{POIID: poi.ID, Time: 1}}); err == nil {
		t.Fatal("push without sign-in must fail")
	}
}

// TestClientPushCheckinsRetriesPressure pins the backpressure contract from
// the client side: a 503 pressure shed with Retry-After is retried per the
// policy, and the batch lands once the server drains.
func TestClientPushCheckinsRetriesPressure(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			_ = json.NewEncoder(w).Encode(map[string]map[string]string{
				"error": {"code": "overloaded", "message": "admission rejected (pressure)", "requestId": "r1"},
			})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(BatchResult{Stored: 3})
	}))
	t.Cleanup(srv.Close)
	c, err := New(srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.SetRetryPolicy(RetryPolicy{MaxRetries: 2, MaxWait: 10 * time.Millisecond, Budget: 10})
	res, err := c.PushCheckins([]Checkin{{POIID: 1, Time: 1}, {POIID: 2, Time: 2}, {POIID: 3, Time: 3}})
	if err != nil {
		t.Fatalf("push after pressure retries failed: %v", err)
	}
	if res.Stored != 3 {
		t.Errorf("stored = %d, want 3", res.Stored)
	}
	if got := hits.Load(); got != 3 {
		t.Errorf("server saw %d requests, want 1 primary + 2 retries", got)
	}
}
