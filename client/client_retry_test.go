package client

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// overloadServer answers 429 (with Retry-After and the overloaded envelope)
// for the first `fails` requests, then 200.
func overloadServer(t *testing.T, fails int64, status int) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := hits.Add(1)
		if n <= fails {
			w.Header().Set("Retry-After", "1")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(status)
			_ = json.NewEncoder(w).Encode(map[string]map[string]string{
				"error": {"code": "overloaded", "message": "server overloaded", "requestId": "r1"},
			})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]interface{}{"pois": []interface{}{}})
	}))
	t.Cleanup(srv.Close)
	return srv, &hits
}

func TestClientRetriesOverload(t *testing.T) {
	srv, hits := overloadServer(t, 2, http.StatusTooManyRequests)
	c, err := New(srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Short MaxWait keeps the test fast while still exercising the
	// Retry-After parse + clamp path (hint is 1s, clamped to 10ms).
	c.SetRetryPolicy(RetryPolicy{MaxRetries: 2, MaxWait: 10 * time.Millisecond, Budget: 10})

	start := time.Now()
	if _, err := c.Search(SearchParams{Limit: 1}); err != nil {
		t.Fatalf("search after retries failed: %v", err)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3 (1 primary + 2 retries)", got)
	}
	// Two jittered waits in [5ms, 10ms): well under the raw 2×1s hint.
	if el := time.Since(start); el > time.Second {
		t.Fatalf("retries slept %v; Retry-After clamp not applied", el)
	}
}

func TestClientOverloadErrorTyped(t *testing.T) {
	srv, hits := overloadServer(t, 1<<30, http.StatusServiceUnavailable)
	c, err := New(srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.SetRetryPolicy(RetryPolicy{MaxRetries: 1, MaxWait: 5 * time.Millisecond, Budget: 10})

	_, err = c.Search(SearchParams{Limit: 1})
	if err == nil {
		t.Fatal("expected overload error")
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("error %v is not an *APIError", err)
	}
	if apiErr.Status != http.StatusServiceUnavailable || apiErr.Code != CodeOverloaded {
		t.Errorf("apiErr = %+v", apiErr)
	}
	if apiErr.RetryAfter != time.Second {
		t.Errorf("RetryAfter = %v, want 1s", apiErr.RetryAfter)
	}
	if !IsOverloaded(err) {
		t.Error("IsOverloaded must report true")
	}
	if got := hits.Load(); got != 2 {
		t.Fatalf("server saw %d requests, want 2 (retry cap respected)", got)
	}
}

func TestClientRetryBudgetDrains(t *testing.T) {
	srv, hits := overloadServer(t, 1<<30, http.StatusServiceUnavailable)
	c, err := New(srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Two tokens total: the first call retries twice, the second call finds
	// the budget empty and fails without retrying.
	c.SetRetryPolicy(RetryPolicy{MaxRetries: 2, MaxWait: 5 * time.Millisecond, Budget: 2})

	if _, err := c.Search(SearchParams{Limit: 1}); !IsOverloaded(err) {
		t.Fatalf("first call err = %v", err)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("first call: server saw %d requests, want 3", got)
	}
	if _, err := c.Search(SearchParams{Limit: 1}); !IsOverloaded(err) {
		t.Fatalf("second call err = %v", err)
	}
	if got := hits.Load(); got != 4 {
		t.Fatalf("budget drained: server saw %d requests, want 4 (no retries left)", got)
	}
}

func TestClientNonOverloadErrorsNotRetried(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		_ = json.NewEncoder(w).Encode(map[string]map[string]string{
			"error": {"code": "bad_request", "message": "nope"},
		})
	}))
	defer srv.Close()
	c, err := New(srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Search(SearchParams{Limit: 1}); err == nil || IsOverloaded(err) {
		t.Fatalf("err = %v, want non-overload failure", err)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("server saw %d requests, want 1 (400s are not retried)", got)
	}
}
