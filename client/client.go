// Package client is a typed Go client for the MoDisSENSE REST API: the
// same JSON contract the paper's web and mobile frontends speak, wrapped
// in Go methods. It lets external applications integrate with a running
// modissense-server without touching the platform internals.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"modissense/internal/model"
	"modissense/internal/obs"
	"modissense/internal/query"
)

// Client talks to one MoDisSENSE server. The zero value is not usable;
// construct with New. Client is safe for concurrent use.
type Client struct {
	baseURL string
	http    *http.Client
	// token is the access token of the signed-in user ("" before SignIn).
	token string

	mu sync.Mutex
	// lastRequestID is the X-Request-ID of the most recent response.
	lastRequestID string

	// retry holds the overload-retry state: the per-call policy plus the
	// client-wide token budget that stops a storm of 429/503 answers from
	// being amplified by every caller retrying at once.
	retry struct {
		mu     sync.Mutex
		policy RetryPolicy
		tokens float64
		rng    *rand.Rand
	}
}

// RetryPolicy tunes the client's automatic retry of overload answers
// (HTTP 429/503 with the "overloaded" envelope). See SetRetryPolicy.
type RetryPolicy struct {
	// MaxRetries is the per-call retry cap (0 disables retrying).
	MaxRetries int
	// MaxWait clamps how long a server Retry-After hint is honored; with no
	// hint the client waits ~25ms. The actual wait is jittered downward to
	// desynchronize competing clients.
	MaxWait time.Duration
	// Budget is the client-wide retry-token cap: each retry spends one
	// token, each successful request earns half a token back (gRPC-style
	// retry throttling). When the budget is drained the overload error is
	// returned immediately.
	Budget float64
}

// DefaultRetryPolicy is the policy installed by New: up to two retries per
// call, Retry-After honored up to 2s, and a 10-token client-wide budget.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxRetries: 2, MaxWait: 2 * time.Second, Budget: 10}
}

// SetRetryPolicy replaces the overload-retry policy (and refills the budget
// to the new cap). A zero policy disables retrying entirely.
func (c *Client) SetRetryPolicy(p RetryPolicy) {
	c.retry.mu.Lock()
	defer c.retry.mu.Unlock()
	c.retry.policy = p
	c.retry.tokens = p.Budget
}

// New creates a client for the server at baseURL (e.g.
// "http://localhost:8080"). A nil httpClient uses a 30-second-timeout
// default.
func New(baseURL string, httpClient *http.Client) (*Client, error) {
	if baseURL == "" {
		return nil, fmt.Errorf("client: empty base URL")
	}
	u, err := url.Parse(baseURL)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") {
		return nil, fmt.Errorf("client: invalid base URL %q", baseURL)
	}
	if httpClient == nil {
		httpClient = &http.Client{Timeout: 30 * time.Second}
	}
	c := &Client{baseURL: u.String(), http: httpClient}
	c.retry.policy = DefaultRetryPolicy()
	c.retry.tokens = c.retry.policy.Budget
	c.retry.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	return c, nil
}

// Token returns the current access token.
func (c *Client) Token() string { return c.token }

// LastRequestID returns the X-Request-ID of the most recent response ("",
// before the first call). Pass it to QueryTrace to fetch that request's
// span tree.
func (c *Client) LastRequestID() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastRequestID
}

func (c *Client) setLastRequestID(id string) {
	if id == "" {
		return
	}
	c.mu.Lock()
	c.lastRequestID = id
	c.mu.Unlock()
}

// APIError is the server's error envelope as a typed Go error. Use
// errors.As to inspect the failure class:
//
//	var apiErr *client.APIError
//	if errors.As(err, &apiErr) && apiErr.Code == "timeout" { ... }
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Code is the machine-readable failure class ("bad_request",
	// "unauthorized", "not_found", "internal", "timeout", "canceled",
	// "overloaded").
	Code string
	// Message is the human-readable description.
	Message string
	// RequestID identifies the failing request; its trace may be
	// retrievable via QueryTrace.
	RequestID string
	// RetryAfter is the server's parsed Retry-After hint on overload
	// answers (0 when absent).
	RetryAfter time.Duration
}

// CodeOverloaded is the envelope code of a 429/503 overload rejection:
// admission said no, the exec queue shed the query, the retry budget
// drained, or every replica sat behind an open breaker.
const CodeOverloaded = "overloaded"

// IsOverloaded reports whether err is an overload rejection the caller may
// retry after backing off (the client has already retried per its policy).
func IsOverloaded(err error) bool {
	var apiErr *APIError
	return errors.As(err, &apiErr) &&
		(apiErr.Status == http.StatusTooManyRequests || apiErr.Status == http.StatusServiceUnavailable)
}

// IsNotFound reports whether err is the server saying the addressed
// resource does not exist (or is not visible to the signed-in user).
func IsNotFound(err error) bool {
	var apiErr *APIError
	return errors.As(err, &apiErr) && apiErr.Status == http.StatusNotFound
}

// Error implements the error interface.
func (e *APIError) Error() string {
	if e.RequestID != "" {
		return fmt.Sprintf("%s (status %d, code %s, request %s)", e.Message, e.Status, e.Code, e.RequestID)
	}
	return fmt.Sprintf("%s (status %d, code %s)", e.Message, e.Status, e.Code)
}

// apiEnvelope mirrors the server's error envelope JSON.
type apiEnvelope struct {
	Error struct {
		Code      string `json:"code"`
		Message   string `json:"message"`
		RequestID string `json:"requestId"`
	} `json:"error"`
}

// do sends a request and decodes the JSON response into out (when non-nil).
func (c *Client) do(method, path string, body, out interface{}) error {
	return c.doCtx(context.Background(), method, path, body, out)
}

// doCtx is do bound to a caller context: cancelling ctx aborts the request
// (and, server-side, the query it carries). Overload answers (429/503) are
// retried per the client's RetryPolicy, honoring the server's Retry-After
// hint with downward jitter; every other failure returns immediately.
func (c *Client) doCtx(ctx context.Context, method, path string, body, out interface{}) error {
	var raw []byte
	if body != nil {
		var err error
		if raw, err = json.Marshal(body); err != nil {
			return fmt.Errorf("client: marshal request: %w", err)
		}
	}
	for attempt := 0; ; attempt++ {
		err := c.doOnce(ctx, method, path, raw, body != nil, out)
		if err == nil {
			c.earnRetryToken()
			return err
		}
		var apiErr *APIError
		if !errors.As(err, &apiErr) || !IsOverloaded(err) {
			return err
		}
		wait, ok := c.nextRetryWait(attempt, apiErr.RetryAfter)
		if !ok {
			return err
		}
		t := time.NewTimer(wait)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return err
		}
	}
}

// nextRetryWait decides whether one more retry may run (per-call cap and
// client-wide budget) and how long to sleep first.
func (c *Client) nextRetryWait(attempt int, hint time.Duration) (time.Duration, bool) {
	c.retry.mu.Lock()
	defer c.retry.mu.Unlock()
	p := c.retry.policy
	if attempt >= p.MaxRetries || c.retry.tokens < 1 {
		return 0, false
	}
	c.retry.tokens--
	wait := 25 * time.Millisecond
	if hint > 0 {
		wait = hint
	}
	if p.MaxWait > 0 && wait > p.MaxWait {
		wait = p.MaxWait
	}
	// Jitter downward into [wait/2, wait): competing clients retrying the
	// same overload hint should not stampede back in lockstep.
	if c.retry.rng != nil {
		wait = wait/2 + time.Duration(c.retry.rng.Int63n(int64(wait/2)+1))
	}
	return wait, true
}

// earnRetryToken refills half a retry token on success, up to the budget.
func (c *Client) earnRetryToken() {
	c.retry.mu.Lock()
	defer c.retry.mu.Unlock()
	if c.retry.tokens += 0.5; c.retry.tokens > c.retry.policy.Budget {
		c.retry.tokens = c.retry.policy.Budget
	}
}

// doOnce runs a single HTTP attempt.
func (c *Client) doOnce(ctx context.Context, method, path string, raw []byte, hasBody bool, out interface{}) error {
	reqBody := bytes.NewReader(raw)
	req, err := http.NewRequestWithContext(ctx, method, c.baseURL+path, reqBody)
	if err != nil {
		return fmt.Errorf("client: build request: %w", err)
	}
	if hasBody {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	reqID := resp.Header.Get("X-Request-ID")
	c.setLastRequestID(reqID)
	if resp.StatusCode/100 != 2 {
		apiErr := &APIError{Status: resp.StatusCode, RequestID: reqID}
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			apiErr.RetryAfter = time.Duration(secs) * time.Second
		}
		var e apiEnvelope
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error.Message != "" {
			apiErr.Code = e.Error.Code
			apiErr.Message = e.Error.Message
			if e.Error.RequestID != "" {
				apiErr.RequestID = e.Error.RequestID
			}
		} else {
			apiErr.Message = fmt.Sprintf("status %d", resp.StatusCode)
		}
		return fmt.Errorf("client: %s %s: %w", method, path, apiErr)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decode %s response: %w", path, err)
	}
	return nil
}

// Session is the result of a sign-in or link call.
type Session struct {
	UserID   int64    `json:"user_id"`
	Token    string   `json:"token"`
	Networks []string `json:"networks"`
}

// SignIn registers or signs in with social-network credentials and stores
// the access token on the client.
func (c *Client) SignIn(network, credentials string) (Session, error) {
	var s Session
	err := c.do(http.MethodPost, "/api/v1/signin", map[string]string{
		"network": network, "credentials": credentials,
	}, &s)
	if err == nil {
		c.token = s.Token
	}
	return s, err
}

// Link attaches one more social network to the signed-in account.
func (c *Client) Link(network, credentials string) (Session, error) {
	var s Session
	err := c.do(http.MethodPost, "/api/v1/link", map[string]string{
		"token": c.token, "network": network, "credentials": credentials,
	}, &s)
	return s, err
}

// Friends lists the signed-in user's friends ("" = all networks).
func (c *Client) Friends(network string) ([]model.Friend, error) {
	path := "/api/v1/friends?token=" + url.QueryEscape(c.token)
	if network != "" {
		path += "&network=" + url.QueryEscape(network)
	}
	var out []model.Friend
	err := c.do(http.MethodGet, path, nil, &out)
	return out, err
}

// SearchParams is a personalized POI search.
type SearchParams struct {
	MinLat, MinLon, MaxLat, MaxLon float64
	Keyword                        string
	Friends                        []int64
	From, To                       time.Time
	OrderBy                        string // "interest" | "hotness"
	Limit                          int
}

// Search runs a personalized query as the signed-in user.
func (c *Client) Search(p SearchParams) (*query.Result, error) {
	return c.SearchCtx(context.Background(), p)
}

// SearchCtx is Search bound to a caller context; cancelling it aborts the
// query server-side mid-scan.
func (c *Client) SearchCtx(ctx context.Context, p SearchParams) (*query.Result, error) {
	body := map[string]interface{}{
		"token":   c.token,
		"min_lat": p.MinLat, "min_lon": p.MinLon,
		"max_lat": p.MaxLat, "max_lon": p.MaxLon,
		"keyword":  p.Keyword,
		"friends":  p.Friends,
		"order_by": p.OrderBy,
		"limit":    p.Limit,
	}
	if !p.From.IsZero() {
		body["from"] = p.From.Format(time.RFC3339)
	}
	if !p.To.IsZero() {
		body["to"] = p.To.Format(time.RFC3339)
	}
	var out query.Result
	if err := c.doCtx(ctx, http.MethodPost, "/api/v1/search", body, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Trending fetches the hottest places in the box over the trailing window.
func (c *Client) Trending(minLat, minLon, maxLat, maxLon float64, hours, limit int, until time.Time) (*query.Result, error) {
	return c.TrendingCtx(context.Background(), minLat, minLon, maxLat, maxLon, hours, limit, until)
}

// TrendingCtx is Trending bound to a caller context.
func (c *Client) TrendingCtx(ctx context.Context, minLat, minLon, maxLat, maxLon float64, hours, limit int, until time.Time) (*query.Result, error) {
	v := url.Values{}
	v.Set("min_lat", strconv.FormatFloat(minLat, 'f', -1, 64))
	v.Set("min_lon", strconv.FormatFloat(minLon, 'f', -1, 64))
	v.Set("max_lat", strconv.FormatFloat(maxLat, 'f', -1, 64))
	v.Set("max_lon", strconv.FormatFloat(maxLon, 'f', -1, 64))
	v.Set("hours", strconv.Itoa(hours))
	v.Set("limit", strconv.Itoa(limit))
	if !until.IsZero() {
		v.Set("until", until.Format(time.RFC3339))
	}
	var out query.Result
	if err := c.doCtx(ctx, http.MethodGet, "/api/v1/trending?"+v.Encode(), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// POI fetches one POI by id.
func (c *Client) POI(id int64) (model.POI, error) {
	var out model.POI
	err := c.do(http.MethodGet, fmt.Sprintf("/api/v1/pois/%d", id), nil, &out)
	return out, err
}

// PushGPS uploads GPS fixes for the signed-in user and returns the stored
// count (which may be smaller than len(fixes) when the server compresses).
func (c *Client) PushGPS(fixes []model.GPSFix) (int, error) {
	var out struct {
		Stored int `json:"stored"`
	}
	err := c.do(http.MethodPost, "/api/v1/gps", map[string]interface{}{
		"token": c.token, "fixes": fixes,
	}, &out)
	return out.Stored, err
}

// Checkin is one check-in in a batched ingest push.
type Checkin struct {
	// POIID references the visited catalog POI.
	POIID int64 `json:"poi_id"`
	// Time is the check-in timestamp in milliseconds since epoch.
	Time int64 `json:"time"`
	// Grade is the optional sentiment grade on the 1–5 scale (0 = ungraded).
	Grade float64 `json:"grade,omitempty"`
	// Network names the social network the check-in came from.
	Network string `json:"network,omitempty"`
}

// CheckinError is one rejected item of a batched check-in push: Index is the
// item's position in the pushed slice, Code the envelope failure class.
type CheckinError struct {
	Index   int    `json:"index"`
	Code    string `json:"code"`
	Message string `json:"message"`
}

// BatchResult reports a batched check-in push: how many items the server
// stored, plus per-item errors for the rejected ones. A partially rejected
// batch is NOT an error — inspect Errors.
type BatchResult struct {
	Stored int            `json:"stored"`
	Errors []CheckinError `json:"errors"`
}

// PushCheckins uploads a batch of check-ins for the signed-in user through
// the batched ingest endpoint (one group-committed store write server-side).
// Write-class overload answers (503 + Retry-After when the server's memtable
// pressure is at the stall point, 429 when over the write rate) are retried
// per the client's RetryPolicy; a still-overloaded error satisfies
// IsOverloaded, so callers can back off and retry the whole batch safely —
// the server stored nothing when it shed the request.
func (c *Client) PushCheckins(checkins []Checkin) (BatchResult, error) {
	return c.PushCheckinsCtx(context.Background(), checkins)
}

// PushCheckinsCtx is PushCheckins bound to a caller context.
func (c *Client) PushCheckinsCtx(ctx context.Context, checkins []Checkin) (BatchResult, error) {
	var out BatchResult
	err := c.doCtx(ctx, http.MethodPost, "/api/v1/checkins", map[string]interface{}{
		"token": c.token, "checkins": checkins,
	}, &out)
	return out, err
}

// Blog is the client view of a stored daily blog.
type Blog struct {
	ID       int64  `json:"id"`
	UserID   int64  `json:"user_id"`
	Title    string `json:"title"`
	Rendered string `json:"rendered"`
	Shared   bool   `json:"shared"`
}

// GenerateBlog builds and persists the signed-in user's blog for the day.
func (c *Client) GenerateBlog(day time.Time) (Blog, error) {
	var out Blog
	err := c.do(http.MethodPost, "/api/v1/blog/generate", map[string]string{
		"token": c.token, "date": day.Format("2006-01-02"),
	}, &out)
	return out, err
}

// GetBlog fetches the signed-in user's blog for the day.
func (c *Client) GetBlog(day time.Time) (Blog, error) {
	v := url.Values{}
	v.Set("token", c.token)
	v.Set("date", day.Format("2006-01-02"))
	var out Blog
	err := c.do(http.MethodGet, "/api/v1/blog?"+v.Encode(), nil, &out)
	return out, err
}

// AdminCollect triggers a data-collection pass (admin surface).
func (c *Client) AdminCollect(since, until time.Time) (map[string]interface{}, error) {
	var out map[string]interface{}
	err := c.do(http.MethodPost, "/api/v1/admin/collect", map[string]string{
		"since": since.Format(time.RFC3339), "until": until.Format(time.RFC3339),
	}, &out)
	return out, err
}

// AdminHotIn triggers a HotIn aggregation over the window.
func (c *Client) AdminHotIn(from, to time.Time) (map[string]interface{}, error) {
	var out map[string]interface{}
	err := c.do(http.MethodPost, "/api/v1/admin/hotin", map[string]string{
		"since": from.Format(time.RFC3339), "until": to.Format(time.RFC3339),
	}, &out)
	return out, err
}

// AdminDetectEvents triggers MR-DBSCAN event detection.
func (c *Client) AdminDetectEvents(epsMeters float64, minPts int) (map[string]interface{}, error) {
	var out map[string]interface{}
	err := c.do(http.MethodPost, "/api/v1/admin/events", map[string]interface{}{
		"eps_meters": epsMeters, "min_pts": minPts,
	}, &out)
	return out, err
}

// Stats fetches the server's operational snapshot.
func (c *Client) Stats() (map[string]interface{}, error) {
	var out map[string]interface{}
	err := c.do(http.MethodGet, "/api/v1/stats", nil, &out)
	return out, err
}

// Blogs lists every blog of the signed-in user, newest first.
func (c *Client) Blogs() ([]Blog, error) {
	var out []Blog
	err := c.do(http.MethodGet, "/api/v1/blogs?token="+url.QueryEscape(c.token), nil, &out)
	return out, err
}

// QueryTrace fetches the span tree of a completed request by its
// X-Request-ID (see LastRequestID). The server keeps a bounded ring of
// recent traces, so fetch promptly.
func (c *Client) QueryTrace(requestID string) (obs.TraceView, error) {
	var out obs.TraceView
	err := c.do(http.MethodGet, "/api/v1/queries/"+url.PathEscape(requestID)+"/trace", nil, &out)
	return out, err
}

// Metrics fetches the server's Prometheus exposition as raw text.
func (c *Client) Metrics() (string, error) {
	req, err := http.NewRequest(http.MethodGet, c.baseURL+"/metrics", nil)
	if err != nil {
		return "", fmt.Errorf("client: build request: %w", err)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return "", fmt.Errorf("client: GET /metrics: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("client: GET /metrics: status %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", fmt.Errorf("client: read /metrics: %w", err)
	}
	return string(raw), nil
}
