package client

import (
	"errors"
	"net/http"
	"strings"
	"testing"
)

// TestClientTypedAPIError verifies server failures surface as *APIError
// with the status, failure class and request ID parsed out of the envelope.
func TestClientTypedAPIError(t *testing.T) {
	c, _ := newServerAndClient(t)
	_, err := c.SignIn("facebook", "garbage")
	if err == nil {
		t.Fatal("bad credentials must fail")
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("error %v is not an *APIError", err)
	}
	if apiErr.Status != http.StatusUnauthorized || apiErr.Code != "unauthorized" {
		t.Errorf("APIError = %+v, want 401/unauthorized", apiErr)
	}
	if apiErr.Message == "" || apiErr.RequestID == "" {
		t.Errorf("APIError missing message or request id: %+v", apiErr)
	}
	if c.LastRequestID() != apiErr.RequestID {
		t.Errorf("LastRequestID %q != APIError.RequestID %q", c.LastRequestID(), apiErr.RequestID)
	}

	// Unknown trace ids are typed too.
	_, err = c.QueryTrace("no-such-request")
	if !errors.As(err, &apiErr) || apiErr.Code != "not_found" {
		t.Errorf("QueryTrace error = %v, want not_found APIError", err)
	}
}

// TestClientTraceAndMetrics drives a real search and fetches its trace by
// the captured request ID, plus the Prometheus exposition.
func TestClientTraceAndMetrics(t *testing.T) {
	c, _ := newServerAndClient(t)
	if _, err := c.SignIn("facebook", "facebook:1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Search(SearchParams{Friends: []int64{1}, Limit: 3}); err != nil {
		t.Fatal(err)
	}
	reqID := c.LastRequestID()
	if reqID == "" {
		t.Fatal("LastRequestID empty after search")
	}
	view, err := c.QueryTrace(reqID)
	if err != nil {
		t.Fatal(err)
	}
	if view.RequestID != reqID || view.Root.Name != "http:search" {
		t.Errorf("trace = %+v, want request %q rooted at http:search", view, reqID)
	}

	text, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{"http_requests_total", "kvstore_rows_scanned_total", "exec_tasks_total"} {
		if !strings.Contains(text, series) {
			t.Errorf("metrics missing %q", series)
		}
	}
}
