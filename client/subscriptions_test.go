package client

import (
	"context"
	"testing"
	"time"
)

// subRegionAround builds a tight box around one catalog POI so the
// subscription matches exactly the check-ins pushed at that POI.
func subRegionAround(lat, lon float64) SubscriptionSpec {
	const pad = 0.01
	return SubscriptionSpec{
		MinLat: lat - pad, MinLon: lon - pad,
		MaxLat: lat + pad, MaxLon: lon + pad,
	}
}

func TestClientSubscriptionLifecycle(t *testing.T) {
	c, p := newServerAndClient(t)
	if _, err := c.SignIn("facebook", "facebook:1"); err != nil {
		t.Fatal(err)
	}
	poi := p.Catalog()[0]

	spec := subRegionAround(poi.Lat, poi.Lon)
	spec.Keywords = []string{"Coffee", "coffee", "LIVE music"}
	spec.TTL = time.Hour
	sub, err := c.CreateSubscription(spec)
	if err != nil {
		t.Fatal(err)
	}
	if sub.ID == "" || sub.UserID == 0 {
		t.Fatalf("create returned incomplete subscription: %+v", sub)
	}
	// Keywords come back tokenized, deduplicated and sorted.
	want := []string{"coffee", "live", "music"}
	if len(sub.Keywords) != len(want) {
		t.Fatalf("keywords = %v, want %v", sub.Keywords, want)
	}
	for i, k := range want {
		if sub.Keywords[i] != k {
			t.Fatalf("keywords = %v, want %v", sub.Keywords, want)
		}
	}
	if sub.ExpiresMillis <= sub.CreatedMillis {
		t.Fatalf("expires %d not after created %d", sub.ExpiresMillis, sub.CreatedMillis)
	}

	got, err := c.GetSubscription(sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != sub.ID {
		t.Fatalf("get returned %q, want %q", got.ID, sub.ID)
	}

	// A second subscription, then paged listing with limit 1.
	if _, err := c.CreateSubscription(subRegionAround(poi.Lat, poi.Lon)); err != nil {
		t.Fatal(err)
	}
	var all []Subscription
	cursor := ""
	for pages := 0; ; pages++ {
		if pages > 4 {
			t.Fatal("pagination did not terminate")
		}
		items, next, err := c.Subscriptions(1, cursor)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, items...)
		if next == "" {
			break
		}
		cursor = next
	}
	if len(all) != 2 {
		t.Fatalf("listed %d subscriptions, want 2", len(all))
	}

	if err := c.DeleteSubscription(sub.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetSubscription(sub.ID); !IsNotFound(err) {
		t.Fatalf("get after delete = %v, want not found", err)
	}
}

func TestClientPollEvents(t *testing.T) {
	c, p := newServerAndClient(t)
	if _, err := c.SignIn("facebook", "facebook:1"); err != nil {
		t.Fatal(err)
	}
	poi := p.Catalog()[0]
	sub, err := c.CreateSubscription(subRegionAround(poi.Lat, poi.Lon))
	if err != nil {
		t.Fatal(err)
	}

	// Nothing buffered yet: an immediate poll returns an empty page.
	events, next, err := c.PollEvents(context.Background(), sub.ID, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 || next != 0 {
		t.Fatalf("empty poll returned %d events cursor %d", len(events), next)
	}

	now := time.Now().UnixMilli()
	if _, err := c.PushCheckins([]Checkin{
		{POIID: poi.ID, Time: now, Grade: 4, Network: "facebook"},
		{POIID: poi.ID, Time: now + 1, Network: "twitter"},
	}); err != nil {
		t.Fatal(err)
	}

	events, next, err = c.PollEvents(context.Background(), sub.ID, 0, 0, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("polled %d events, want 2", len(events))
	}
	if events[0].POIID != poi.ID || events[0].Seq != 1 || events[1].Seq != 2 {
		t.Fatalf("unexpected events: %+v", events)
	}
	if next != 2 {
		t.Fatalf("next cursor = %d, want 2", next)
	}

	// Resuming from the cursor yields nothing new.
	events, next, err = c.PollEvents(context.Background(), sub.ID, next, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 || next != 2 {
		t.Fatalf("resume poll returned %d events cursor %d", len(events), next)
	}
}

func TestClientStreamEvents(t *testing.T) {
	c, p := newServerAndClient(t)
	if _, err := c.SignIn("facebook", "facebook:1"); err != nil {
		t.Fatal(err)
	}
	poi := p.Catalog()[0]
	sub, err := c.CreateSubscription(subRegionAround(poi.Lat, poi.Lon))
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	stream, err := c.StreamEvents(ctx, sub.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()

	if _, err := c.PushCheckins([]Checkin{
		{POIID: poi.ID, Time: time.Now().UnixMilli(), Network: "facebook"},
	}); err != nil {
		t.Fatal(err)
	}

	type step struct {
		ok bool
		ev SubscriptionEvent
	}
	steps := make(chan step, 1)
	go func() {
		ok := stream.Next()
		steps <- step{ok: ok, ev: stream.Event()}
	}()
	select {
	case s := <-steps:
		if !s.ok {
			t.Fatalf("stream ended early: %v", stream.Err())
		}
		if s.ev.POIID != poi.ID || s.ev.Seq != 1 {
			t.Fatalf("unexpected streamed event: %+v", s.ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no event streamed within 5s")
	}

	// Closing from this goroutine unblocks the reader with a clean end.
	go func() {
		ok := stream.Next()
		steps <- step{ok: ok}
	}()
	time.Sleep(50 * time.Millisecond)
	stream.Close()
	select {
	case s := <-steps:
		if s.ok {
			t.Fatal("Next returned an event after Close")
		}
		if err := stream.Err(); err != nil {
			t.Fatalf("closed stream reported error: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Next did not unblock after Close")
	}

	// Opening a stream on an unknown subscription fails with not found.
	if _, err := c.StreamEvents(context.Background(), "999999", 0); !IsNotFound(err) {
		t.Fatalf("stream on unknown subscription = %v, want not found", err)
	}
}
