package modissense_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"modissense"
)

// TestPublicAPIEndToEnd exercises the whole platform through the public
// package only: boot, sign-in, collection, HotIn, search, trending, GPS,
// blog, event detection — the full demo flow of §4.
func TestPublicAPIEndToEnd(t *testing.T) {
	cfg := modissense.DefaultConfig()
	cfg.POIs = 200
	cfg.NetworkPopulation = 300
	cfg.MeanFriends = 10
	cfg.ClassifierTrainDocs = 300
	p, err := modissense.New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	_, token, err := p.Users.SignIn("facebook", "facebook:1")
	if err != nil {
		t.Fatal(err)
	}
	since := time.Date(2015, 5, 1, 0, 0, 0, 0, time.UTC)
	until := since.Add(5 * 24 * time.Hour)
	if _, err := p.Collect(since, until); err != nil {
		t.Fatal(err)
	}
	if _, err := p.UpdateHotIn(since, until); err != nil {
		t.Fatal(err)
	}

	bounds := modissense.NewRect(
		modissense.Point{Lat: 34.8, Lon: 19.3},
		modissense.Point{Lat: 41.8, Lon: 28.3},
	)
	res, err := p.Search(context.Background(), modissense.SearchRequest{
		Token:   token,
		BBox:    &bounds,
		Friends: []int64{1},
		From:    since,
		To:      until,
		OrderBy: modissense.ByInterest,
		Limit:   5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.POIs) == 0 || res.LatencySeconds <= 0 {
		t.Fatalf("search result = %+v", res)
	}
	trend, err := p.Trending(context.Background(), &bounds, nil, since, until, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(trend.POIs) == 0 {
		t.Fatal("trending empty")
	}

	// GPS + blog through the public facade.
	day := time.Date(2015, 5, 30, 0, 0, 0, 0, time.UTC)
	stop := p.Catalog()[0]
	var fixes []modissense.GPSFix
	for i := 0; i < 8; i++ {
		fixes = append(fixes, modissense.GPSFix{
			Lat:  stop.Lat,
			Lon:  stop.Lon,
			Time: day.Add(time.Duration(10*60+i*5) * time.Minute).UnixMilli(),
		})
	}
	if _, err := p.PushGPS(token, fixes); err != nil {
		t.Fatal(err)
	}
	blog, err := p.GenerateBlog(token, day)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(blog.Rendered, stop.Name) {
		t.Errorf("blog must mention the visited POI:\n%s", blog.Rendered)
	}
}

// TestPublicRESTHandler verifies NewHandler serves the public REST surface.
func TestPublicRESTHandler(t *testing.T) {
	cfg := modissense.DefaultConfig()
	cfg.POIs = 100
	cfg.NetworkPopulation = 200
	cfg.MeanFriends = 8
	cfg.ClassifierTrainDocs = 200
	p, err := modissense.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(modissense.NewHandler(p))
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/api/signin", "application/json",
		strings.NewReader(`{"network":"twitter","credentials":"twitter:9"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("signin status %d", resp.StatusCode)
	}
	var out struct {
		UserID int64  `json:"user_id"`
		Token  string `json:"token"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.UserID == 0 || out.Token == "" {
		t.Fatalf("signin response = %+v", out)
	}
}

// TestClassifierOptionConstructors checks the exported pipeline presets.
func TestClassifierOptionConstructors(t *testing.T) {
	base := modissense.BaselineClassifierOptions()
	opt := modissense.OptimizedClassifierOptions()
	if base.Bigrams || base.BNS || base.TermFrequency {
		t.Errorf("baseline must not enable optimizations: %+v", base)
	}
	if !opt.Bigrams || !opt.BNS || !opt.TermFrequency || opt.MinOccurrences < 2 {
		t.Errorf("optimized must enable every optimization: %+v", opt)
	}
}

// TestSchemaConstantsExported checks the ablation schema selectors.
func TestSchemaConstantsExported(t *testing.T) {
	cfg := modissense.DefaultConfig()
	cfg.POIs = 50
	cfg.NetworkPopulation = 100
	cfg.MeanFriends = 5
	cfg.ClassifierTrainDocs = 200
	cfg.VisitSchema = modissense.SchemaNormalized
	p, err := modissense.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.Visits.Schema() != modissense.SchemaNormalized {
		t.Error("schema constant did not propagate")
	}
}
